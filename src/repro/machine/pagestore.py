"""Columnar page-frame store: one arena, many pages, optional sharing.

Prior to this module every materialized page frame was its own
``bytearray`` — thousands of small heap objects, each pickled separately
whenever page state crossed a process boundary.  ``PageStore`` keeps all
frames of one owner in a small number of large *segments* (columnar
layout) and hands out per-page ``memoryview`` windows:

* a **byte view** (``memoryview`` of the page's 4096 bytes) for slice
  reads/writes, and
* a **word view** (the same bytes cast to ``'Q'``) so aligned 64-bit
  loads and stores are single indexed operations instead of
  ``int.from_bytes``/``to_bytes`` round trips.

Segments never move or resize once created (growth appends new
segments), so handed-out views stay valid for the life of the store.

With ``shared=True`` the segments are allocated in POSIX shared memory
(:mod:`multiprocessing.shared_memory`) instead of the private heap.  A
:class:`PageStoreHandle` — a tiny picklable descriptor of segment names —
lets another process :meth:`attach` to the same frames with zero
copying, which is how the diagnosis pool and the fuzz fan-out stop
pickling page state.

A slot is "dirty" exactly while it is allocated; freed slots are
re-zeroed lazily on reuse so fresh frames always read as zero (the
demand-paging contract of :class:`~repro.machine.memory.VirtualMemory`).
"""

from __future__ import annotations

import os
from typing import Dict, List, Optional, Tuple

from .layout import PAGE_SIZE

#: Pages in the first segment of a private (non-shared) store.  Private
#: stores are created per ``VirtualMemory`` — often thousands per run —
#: so the first segment is small and growth doubles from there.
PRIVATE_SEGMENT_PAGES = 16

#: Upper bound on private segment growth (pages per segment).
PRIVATE_SEGMENT_CAP = 2048

#: Pages per shared-memory segment (1 MiB).  Shared segments carry a
#: per-segment OS object, so they are created coarser than private ones.
SHARED_SEGMENT_PAGES = 256

_ZERO_PAGE = bytes(PAGE_SIZE)


class PageStoreClosed(RuntimeError):
    """Operation on a store whose segments have been released."""


class PageStoreHandle:
    """Picklable descriptor of a shared store's segments.

    Holds only segment *names* (plus geometry); :meth:`PageStore.attach`
    reopens the same shared memory in another process.
    """

    __slots__ = ("segment_names", "segment_pages")

    def __init__(self, segment_names: Tuple[str, ...],
                 segment_pages: Tuple[int, ...]) -> None:
        self.segment_names = segment_names
        self.segment_pages = segment_pages

    def __getstate__(self) -> Tuple[Tuple[str, ...], Tuple[int, ...]]:
        return (self.segment_names, self.segment_pages)

    def __setstate__(self, state: Tuple[Tuple[str, ...],
                                        Tuple[int, ...]]) -> None:
        self.segment_names, self.segment_pages = state


class PageStore:
    """A growable arena of page frames with slot-based allocation.

    Args:
        shared: allocate segments in ``multiprocessing.shared_memory``
            so other processes can :meth:`attach`.  Defaults to private
            in-process ``bytearray`` segments.
        name_prefix: prefix for shared-segment names (diagnosability;
            the pid and a counter are always appended).
    """

    _shared_counter = 0

    def __init__(self, shared: bool = False,
                 name_prefix: str = "repro-pages") -> None:
        self.shared = shared
        self._name_prefix = name_prefix
        #: Per-segment byte views (windows are sliced out of these).
        self._segment_views: List[memoryview] = []
        #: Per-segment page capacity (private segments grow, shared are
        #: fixed-size).
        self._segment_pages: List[int] = []
        #: Shared-memory objects (shared stores only), kept for cleanup.
        self._shm_blocks: List[object] = []
        #: Slot id of the first page of each segment.
        self._segment_base: List[int] = []
        self._free_slots: List[int] = []
        #: Freed slots whose contents were not re-zeroed yet.
        self._dirty_slots: set = set()
        self._total_slots = 0
        self._allocated = 0
        self._closed = False
        #: True when this store attached to another process's segments
        #: (attached stores never unlink on close).
        self._attached = False

    # ------------------------------------------------------------------
    # Segment plumbing
    # ------------------------------------------------------------------

    def _next_segment_pages(self) -> int:
        if self.shared:
            return SHARED_SEGMENT_PAGES
        if not self._segment_pages:
            return PRIVATE_SEGMENT_PAGES
        return min(self._segment_pages[-1] * 2, PRIVATE_SEGMENT_CAP)

    def _add_segment(self) -> None:
        if self._closed:
            raise PageStoreClosed("page store has been closed")
        pages = self._next_segment_pages()
        if self.shared:
            from multiprocessing import shared_memory

            PageStore._shared_counter += 1
            name = (f"{self._name_prefix}-{os.getpid()}"
                    f"-{PageStore._shared_counter}")
            block = shared_memory.SharedMemory(
                create=True, size=pages * PAGE_SIZE, name=name)
            self._shm_blocks.append(block)
            view = memoryview(block.buf)
        else:
            view = memoryview(bytearray(pages * PAGE_SIZE))
        base = self._total_slots
        self._segment_views.append(view)
        self._segment_pages.append(pages)
        self._segment_base.append(base)
        self._total_slots += pages
        # Low slots first: freshly added slots are handed out in
        # ascending order for deterministic layouts.
        self._free_slots.extend(range(base + pages - 1, base - 1, -1))

    def _locate(self, slot: int) -> Tuple[int, int]:
        """Map a slot id to ``(segment index, page index in segment)``."""
        for seg, base in enumerate(self._segment_base):
            if base <= slot < base + self._segment_pages[seg]:
                return seg, slot - base
        raise ValueError(f"slot {slot} out of range")

    def _views_for(self, slot: int) -> Tuple[memoryview, memoryview]:
        seg, index = self._locate(slot)
        start = index * PAGE_SIZE
        window = self._segment_views[seg][start:start + PAGE_SIZE]
        return window, window.cast("Q")

    # ------------------------------------------------------------------
    # Slot allocation
    # ------------------------------------------------------------------

    def alloc(self) -> Tuple[int, memoryview, memoryview]:
        """Allocate one zeroed page frame.

        Returns ``(slot, byte view, word view)``.  Reused slots are
        re-zeroed here so a fresh frame always reads as zero.
        """
        if self._closed:
            raise PageStoreClosed("page store has been closed")
        if not self._free_slots:
            self._add_segment()
        slot = self._free_slots.pop()
        window, words = self._views_for(slot)
        if slot in self._dirty_slots:
            # The slot held data before; restore the zero-page contract.
            self._dirty_slots.discard(slot)
            window[:] = _ZERO_PAGE
        self._allocated += 1
        return slot, window, words

    def free(self, slot: int) -> None:
        """Return a slot to the free list (contents re-zeroed on reuse)."""
        if self._closed:
            return
        self._free_slots.append(slot)
        self._dirty_slots.add(slot)
        self._allocated -= 1

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def allocated_pages(self) -> int:
        """Slots currently handed out (the store's dirty-page count)."""
        return self._allocated

    @property
    def capacity_pages(self) -> int:
        """Total slots across all segments."""
        return self._total_slots

    @property
    def segment_count(self) -> int:
        """Number of backing segments."""
        return len(self._segment_views)

    # ------------------------------------------------------------------
    # Sharing
    # ------------------------------------------------------------------

    def handle(self) -> PageStoreHandle:
        """Picklable descriptor another process can :meth:`attach` to."""
        if not self.shared:
            raise ValueError("handle() requires a shared PageStore")
        names = tuple(block.name  # type: ignore[attr-defined]
                      for block in self._shm_blocks)
        return PageStoreHandle(names, tuple(self._segment_pages))

    @classmethod
    def attach(cls, handle: PageStoreHandle) -> "PageStore":
        """Open another process's shared segments (no copying).

        The attached store exposes the same frames read-write; it never
        unlinks the segments on :meth:`close` — ownership stays with the
        creating process.
        """
        from multiprocessing import shared_memory

        store = cls(shared=True)
        store._attached = True
        for name, pages in zip(handle.segment_names, handle.segment_pages):
            block = shared_memory.SharedMemory(name=name)
            store._shm_blocks.append(block)
            base = store._total_slots
            store._segment_views.append(memoryview(block.buf))
            store._segment_pages.append(pages)
            store._segment_base.append(base)
            store._total_slots += pages
        # Attached stores are read/write windows over foreign frames;
        # they do not allocate, so no free slots are registered.
        return store

    # ------------------------------------------------------------------
    # Cleanup
    # ------------------------------------------------------------------

    def close(self) -> None:
        """Release segments; shared owners also unlink the OS objects.

        Safe to call more than once.  Handed-out views keep their
        underlying mappings alive until they are garbage collected, so
        closing with live frames does not invalidate them — it only
        removes the shared names from the system.
        """
        if self._closed:
            return
        self._closed = True
        self._segment_views.clear()
        for block in self._shm_blocks:
            try:
                block.close()  # type: ignore[attr-defined]
            except BufferError:
                # Views handed out to a VirtualMemory are still alive;
                # the mapping persists until they are collected.
                pass
            if not self._attached:
                try:
                    block.unlink()  # type: ignore[attr-defined]
                except FileNotFoundError:  # pragma: no cover - racing
                    pass
        self._shm_blocks.clear()

    def __del__(self) -> None:  # pragma: no cover - GC timing
        try:
            self.close()
        except Exception:
            pass


#: Process-wide default store set by pool initializers: when not
#: ``None``, every ``VirtualMemory`` created without an explicit
#: ``page_store`` draws frames from it (e.g. a shared arena in a
#: diagnosis worker).  ``None`` keeps the historical behaviour of one
#: private store per VirtualMemory.
_DEFAULT_STORE: Optional[PageStore] = None


def set_default_store(store: Optional[PageStore]) -> None:
    """Install (or clear) the process-wide default page store."""
    global _DEFAULT_STORE
    _DEFAULT_STORE = store


def get_default_store() -> Optional[PageStore]:
    """The process-wide default page store, if one is installed."""
    return _DEFAULT_STORE


#: The shared arena installed by :func:`install_shared_worker_store`
#: (kept separate from ``_DEFAULT_STORE`` so cleanup only tears down
#: arenas this module itself created).
_WORKER_STORE: Optional[PageStore] = None


def install_shared_worker_store(name_prefix: str = "repro-pages"
                                ) -> PageStore:
    """Back this process's page frames with one shared-memory arena.

    Pool worker initializers call this so every ``VirtualMemory`` a
    worker creates draws frames from ``multiprocessing.shared_memory``
    segments instead of private ``bytearray`` heaps — page state then
    lives in OS-shared mappings that never transit pickle.

    Idempotent while the arena is open.  Cleanup runs on normal worker
    shutdown (pool exit, both ``fork`` and ``spawn`` start methods) so
    pools leave nothing behind in ``/dev/shm``.  Multiprocessing
    children exit through ``util._exit_function`` + ``os._exit`` —
    plain :mod:`atexit` handlers never fire there — so the unlink is
    registered as a :class:`multiprocessing.util.Finalize` finalizer
    (and with :mod:`atexit` too, for in-process callers).
    """
    global _WORKER_STORE
    if _WORKER_STORE is not None and not _WORKER_STORE._closed:
        return _WORKER_STORE
    import atexit
    from multiprocessing import util as mp_util

    store = PageStore(shared=True, name_prefix=name_prefix)
    _WORKER_STORE = store
    set_default_store(store)
    atexit.register(uninstall_shared_worker_store)
    mp_util.Finalize(store, uninstall_shared_worker_store,
                     exitpriority=100)
    return store


def uninstall_shared_worker_store() -> None:
    """Tear down the arena installed by
    :func:`install_shared_worker_store` (idempotent)."""
    global _WORKER_STORE
    store = _WORKER_STORE
    _WORKER_STORE = None
    if store is not None:
        if get_default_store() is store:
            set_default_store(None)
        store.close()
