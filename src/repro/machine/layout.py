"""Address-space layout constants for the simulated machine.

The layout mirrors a conventional x86-64 Linux process: a 48-bit virtual
address space with the heap growing upward from a fixed base and an mmap
area placed high, far enough away that the two never collide in any
simulation this library runs.

The paper's online defense packs the guard-page location into 36 bits of the
per-buffer metadata word precisely *because* the usable virtual address space
is 48 bits and pages are 2**12 bytes (48 - 12 = 36).  Keeping the same
geometry here lets ``repro.defense.metadata`` reproduce the bit layout of
Figure 6 exactly.
"""

from __future__ import annotations

#: Page size in bytes (4 KiB, like x86-64 Linux).
PAGE_SIZE: int = 4096

#: log2(PAGE_SIZE); the guard-page field stores frame numbers, i.e.
#: addresses shifted right by this amount.
PAGE_SHIFT: int = 12

#: Width of a virtual address in bits.  Canonical user-space x86-64.
ADDRESS_BITS: int = 48

#: One past the largest valid virtual address.
ADDRESS_SPACE_SIZE: int = 1 << ADDRESS_BITS

#: Machine word size in bytes (64-bit machine).
WORD_SIZE: int = 8

#: Largest value a ``size_t`` can hold; allocation-size arithmetic that
#: exceeds it (``calloc(nmemb, size)`` products) must fail, as glibc's
#: overflow check does, rather than wrap or silently allocate.
SIZE_MAX: int = (1 << 64) - 1

#: Base of the program break (heap) region.
HEAP_BASE: int = 0x0000_5555_0000_0000

#: Maximum extent of the brk heap before the simulation reports OOM.
HEAP_LIMIT: int = 0x0000_5FFF_FFFF_F000

#: Base of the mmap area (grows upward in the simulation for determinism).
MMAP_BASE: int = 0x0000_7F00_0000_0000

#: Maximum extent of the mmap area.
MMAP_LIMIT: int = 0x0000_7FFF_FFFF_F000


def page_align_down(address: int) -> int:
    """Round ``address`` down to a page boundary."""
    return address & ~(PAGE_SIZE - 1)


def page_align_up(address: int) -> int:
    """Round ``address`` up to a page boundary."""
    return (address + PAGE_SIZE - 1) & ~(PAGE_SIZE - 1)


def page_number(address: int) -> int:
    """Return the virtual page frame number containing ``address``."""
    return address >> PAGE_SHIFT


def is_page_aligned(address: int) -> bool:
    """True if ``address`` lies on a page boundary."""
    return (address & (PAGE_SIZE - 1)) == 0


def align_up(value: int, alignment: int) -> int:
    """Round ``value`` up to a multiple of ``alignment`` (a power of two)."""
    if alignment <= 0 or alignment & (alignment - 1):
        raise ValueError(f"alignment must be a power of two, got {alignment}")
    return (value + alignment - 1) & ~(alignment - 1)


def is_power_of_two(value: int) -> bool:
    """True if ``value`` is a positive power of two."""
    return value > 0 and (value & (value - 1)) == 0
