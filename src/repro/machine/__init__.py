"""Simulated machine substrate: virtual memory, page protection, faults.

This package stands in for the hardware/OS facilities the original
HeapTherapy+ implementation obtained from x86-64 Linux (``mmap``,
``mprotect``, ``sbrk``, SIGSEGV).  See ``DESIGN.md`` §1 for the substitution
rationale.
"""

from .errors import (
    BusError,
    DoubleFree,
    InvalidFree,
    MachineError,
    MapError,
    OutOfMemoryError,
    SegmentationFault,
)
from .layout import (
    ADDRESS_BITS,
    ADDRESS_SPACE_SIZE,
    HEAP_BASE,
    MMAP_BASE,
    PAGE_SHIFT,
    PAGE_SIZE,
    WORD_SIZE,
    align_up,
    is_page_aligned,
    is_power_of_two,
    page_align_down,
    page_align_up,
    page_number,
)
from .memory import PROT_NONE, PROT_READ, PROT_RW, PROT_WRITE, VirtualMemory

__all__ = [
    "ADDRESS_BITS",
    "ADDRESS_SPACE_SIZE",
    "BusError",
    "DoubleFree",
    "HEAP_BASE",
    "InvalidFree",
    "MMAP_BASE",
    "MachineError",
    "MapError",
    "OutOfMemoryError",
    "PAGE_SHIFT",
    "PAGE_SIZE",
    "PROT_NONE",
    "PROT_READ",
    "PROT_RW",
    "PROT_WRITE",
    "SegmentationFault",
    "VirtualMemory",
    "WORD_SIZE",
    "align_up",
    "is_page_aligned",
    "is_power_of_two",
    "page_align_down",
    "page_align_up",
    "page_number",
]
