"""Fault hierarchy for the simulated machine.

The simulated machine raises Python exceptions where real hardware would
deliver a signal.  ``SegmentationFault`` corresponds to ``SIGSEGV`` — it is
what a guard page or an unmapped access produces — and carries enough context
(address, access kind, size) for the shadow-memory analyzer and for tests to
assert on precisely *where* a violation happened.
"""

from __future__ import annotations

from typing import Optional


class MachineError(Exception):
    """Base class for all faults raised by the simulated machine."""


class SegmentationFault(MachineError):
    """Access to an unmapped or permission-protected address.

    Attributes:
        address: the first faulting virtual address.
        access: one of ``"read"``, ``"write"``, ``"exec"``.
        size: the size in bytes of the attempted access.
    """

    def __init__(self, address: int, access: str = "read", size: int = 1,
                 message: Optional[str] = None) -> None:
        self.address = address
        self.access = access
        self.size = size
        if message is None:
            message = (f"SIGSEGV: invalid {access} of {size} byte(s) at "
                       f"0x{address:012x}")
        super().__init__(message)


class BusError(MachineError):
    """Misaligned access where alignment is required (``SIGBUS``)."""

    def __init__(self, address: int, alignment: int) -> None:
        self.address = address
        self.alignment = alignment
        super().__init__(
            f"SIGBUS: address 0x{address:012x} is not {alignment}-byte aligned")


class OutOfMemoryError(MachineError):
    """The simulated address space (or a quota) is exhausted."""


class MapError(MachineError):
    """Invalid ``mmap``/``mprotect``/``munmap`` request.

    Raised for overlapping fixed mappings, protecting unmapped ranges, or
    non-page-aligned arguments — mirroring ``EINVAL``/``ENOMEM`` from the
    corresponding system calls.
    """


class InvalidFree(MachineError):
    """``free``/``realloc`` called with a pointer the allocator never issued.

    glibc aborts with ``free(): invalid pointer``; the simulation raises so
    the condition is testable.
    """

    def __init__(self, address: int, reason: str = "invalid pointer") -> None:
        self.address = address
        super().__init__(f"free(0x{address:012x}): {reason}")


class DoubleFree(InvalidFree):
    """``free`` called twice on the same live chunk."""

    def __init__(self, address: int) -> None:
        super().__init__(address, reason="double free detected")
