"""Command-line interface: drive the pipeline on bundled workloads.

::

    python -m repro list
    python -m repro attack heartbleed
    python -m repro analyze heartbleed -o patches.conf
    python -m repro analyze heartbleed --attack attack --attack benign
    python -m repro analyze heartbleed --static -o patches.conf
    python -m repro diagnose --jobs 4 --json diagnosis.json
    python -m repro diagnose --corpus reports/ --jobs 2 -o patches/
    python -m repro defend heartbleed -c patches.conf --input attack
    python -m repro explain heartbleed -c patches.conf
    python -m repro encode heartbleed --strategy incremental
    python -m repro lint --encoding
    python -m repro verify-encoding --spec --json certificates.json
    python -m repro bench --suite substrate --baseline BENCH_substrate.json

Each command exercises the same public API an embedding application
would use; the CLI exists so the system can be explored without writing
code.

Exit codes are uniform across the analysis commands: 0 means clean, 1
means findings (lint errors, uncertified encodings, undetected
vulnerabilities), 2 means usage error (unknown workload/flag).
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from .ccencoding import Strategy, plans_for_all_strategies
from .core.explain import explain_patch
from .core.pipeline import HeapTherapy
from .defense.patch_table import PatchTable
from .patch import config as patch_config
from .workloads.vulnerable import VulnerableProgram, workload_registry

WORKLOADS = workload_registry()


def _usage_error(message: str) -> SystemExit:
    """Uniform usage-error exit (status 2, matching argparse)."""
    print(message, file=sys.stderr)
    return SystemExit(2)


def _resolve(name: str) -> VulnerableProgram:
    factory = WORKLOADS.get(name.lower())
    if factory is None:
        raise _usage_error(
            f"unknown workload {name!r}; run `python -m repro list`")
    return factory()


def _input_for(program: VulnerableProgram, which: str):
    if which == "attack":
        return program.attack_input()
    if which == "benign":
        return program.benign_input()
    raise _usage_error(
        f"--input must be 'attack' or 'benign', got {which!r}")


def cmd_list(args: argparse.Namespace) -> int:
    """List the bundled workloads."""
    print(f"{'name':<12} {'vulnerability':<16} reference")
    print("-" * 52)
    for name, factory in sorted(WORKLOADS.items()):
        program = factory()
        print(f"{name:<12} {program.vulnerability:<16} {program.reference}")
    return 0


def cmd_attack(args: argparse.Namespace) -> int:
    """Run an input against the native (undefended) program."""
    program = _resolve(args.workload)
    system = HeapTherapy(program, strategy=Strategy.from_name(args.strategy))
    run = system.run_native(_input_for(program, args.input))
    print(f"workload: {program.name} ({program.reference})")
    print(f"input:    {args.input}")
    if args.input == "attack":
        print(f"attack succeeded: {program.attack_succeeded(run.result)}")
    else:
        print(f"benign works: {program.benign_works(run.result)}")
    if run.result is not None and run.result.facts:
        print(f"observed: {run.result.facts}")
    return 0


def cmd_analyze(args: argparse.Namespace) -> int:
    """Emit patches: offline attack replay, or static (``--static``).

    ``--attack`` may be given several times; each occurrence replays one
    named input and the per-input outcomes are reported individually.
    Patches from all replays are merged deterministically (duplicate
    contexts take the widest vulnerability mask).
    """
    from .patch.model import merge_patches

    program = _resolve(args.workload)
    system = HeapTherapy(program, strategy=Strategy.from_name(args.strategy))
    if args.static:
        static = system.generate_static_patches()
        print(static.render())
        detected = static.detected
        patches = static.patches
    else:
        inputs = args.attacks or ["attack"]
        groups = []
        detected = False
        for which in inputs:
            generation = system.generate_patches(
                _input_for(program, which))
            print(f"--- input: {which} ---")
            print(generation.report.render())
            print(f"input {which}: "
                  + (f"{len(generation.patches)} patch(es)"
                     if generation.detected
                     else "no vulnerability detected"))
            detected = detected or generation.detected
            groups.append(generation.patches)
        patches = merge_patches(groups)
    if not detected:
        print("no vulnerability detected")
        return 1
    text = patch_config.dumps(patches)
    if args.output:
        patch_config.save(patches, args.output)
        print(f"\nwrote {len(patches)} patch(es) to "
              f"{args.output}")
    else:
        print("\n" + text, end="")
    return 0


def cmd_diagnose(args: argparse.Namespace) -> int:
    """Parallel offline diagnosis of a whole attack corpus."""
    import json
    from pathlib import Path

    from .parallel import DiagnosisPool
    from .workloads.corpus import CorpusError, default_corpus, load_corpus

    if args.jobs < 0:
        raise _usage_error(f"--jobs must be >= 0, got {args.jobs}")
    if args.corpus:
        try:
            corpus = load_corpus(args.corpus)
        except CorpusError as exc:
            raise _usage_error(str(exc))
    else:
        corpus = default_corpus()
    pool = DiagnosisPool(jobs=args.jobs or None,
                         strategy=Strategy.from_name(args.strategy),
                         shared_pages=args.shared_pages)
    diagnosis = pool.diagnose(corpus)
    print(diagnosis.render())
    if args.out_dir:
        out = Path(args.out_dir)
        out.mkdir(parents=True, exist_ok=True)
        written = 0
        for workload in sorted(diagnosis.tables):
            table = diagnosis.tables[workload]
            if not len(table):
                continue
            (out / f"{workload}.conf").write_text(table.serialize(),
                                                  encoding="utf-8")
            written += 1
        print(f"wrote {written} patch config(s) to {out}/")
    if args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(diagnosis.to_dict(), handle, indent=1)
            handle.write("\n")
        print(f"wrote diagnosis report to {args.json}")
    failures = diagnosis.failures()
    if failures:
        print(f"{len(failures)} attack entr"
              f"{'y' if len(failures) == 1 else 'ies'} produced no "
              f"patch: " + ", ".join(r.entry_id for r in failures),
              file=sys.stderr)
        return 1
    return 0


def cmd_fuzz(args: argparse.Namespace) -> int:
    """Differential fuzzing campaign over generated programs."""
    from .fuzz import run_campaign

    if args.count < 1:
        raise _usage_error(f"--count must be >= 1, got {args.count}")
    if args.jobs < 0:
        raise _usage_error(f"--jobs must be >= 0, got {args.jobs}")
    campaign = run_campaign(args.seed, args.count, jobs=args.jobs,
                            minimize=args.minimize,
                            out_dir=args.out_dir,
                            shared_pages=args.shared_pages)
    if args.json:
        print(campaign.render())
    else:
        report = campaign.to_json()
        kinds = ", ".join(f"{kind}={count}"
                          for kind, count in report["kinds"].items())
        print(f"fuzz: {report['cases']} case(s) from seed {args.seed}"
              f" ({kinds})")
        print(f"failed: {report['failed']}")
        for failure in report["failures"]:
            print(f"  seed {failure['seed']} [{failure['name']}]:")
            for message in failure["failures"]:
                print(f"    {message}")
    if campaign.reproducers:
        for path in campaign.reproducers:
            print(f"wrote reproducer {path}", file=sys.stderr)
    return 0 if campaign.ok else 1


def cmd_synth(args: argparse.Namespace) -> int:
    """Symbolic attack synthesis: concretize layout plans, then defeat
    them."""
    import json
    from pathlib import Path

    from .fuzz.generator import spec_from_dict
    from .synth import corpus_of, synthesize_range, synthesize_specs
    from .workloads.corpus import save_corpus

    if args.jobs < 0:
        raise _usage_error(f"--jobs must be >= 0, got {args.jobs}")
    if args.count < 1:
        raise _usage_error(f"--count must be >= 1, got {args.count}")
    jobs = args.jobs or None
    import os
    resolved_jobs = jobs if jobs is not None else (os.cpu_count() or 1)
    plan_kinds = () if args.plan == "all" else (args.plan,)

    if args.specs:
        specs = []
        for path in args.specs:
            try:
                payload = json.loads(
                    Path(path).read_text(encoding="utf-8"))
            except (OSError, json.JSONDecodeError) as exc:
                raise _usage_error(f"--spec {path}: {exc}")
            try:
                # Accept both fuzz reproducer files ({"spec": {...}})
                # and bare spec dictionaries.
                specs.append(spec_from_dict(payload.get("spec", payload)
                                            if isinstance(payload, dict)
                                            else payload))
            except (KeyError, TypeError, ValueError) as exc:
                raise _usage_error(f"--spec {path}: invalid spec: {exc}")
        report = synthesize_specs(specs, jobs=resolved_jobs,
                                  plan_kinds=plan_kinds)
    else:
        report = synthesize_range(args.seed, args.count,
                                  jobs=resolved_jobs,
                                  plan_kinds=plan_kinds)

    print(report.render(verbose=args.verbose))
    if args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            handle.write(report.render_json())
            handle.write("\n")
        print(f"wrote synthesis report to {args.json}")
    if args.out_dir:
        corpus = corpus_of(report)
        if len(corpus):
            out = save_corpus(corpus, args.out_dir,
                              filename="synth_corpus.json")
            print(f"wrote {len(corpus)} synthesized attack entr"
                  f"{'y' if len(corpus) == 1 else 'ies'} to {out}")
        else:
            print("no attacks concretized; corpus not written")
    gaps = report.gaps
    if gaps:
        for gap in gaps:
            print(f"synthesis gap: {gap}", file=sys.stderr)
        return 1
    return 0


def cmd_lint(args: argparse.Namespace) -> int:
    """Cross-check declared call graphs against program behaviour."""
    from .analysis import lint_program, verify_all

    names = args.workloads or sorted(WORKLOADS)
    failed = 0
    uncertified = 0
    for name in names:
        program = _resolve(name)
        report = lint_program(program,
                              synthesizability=args.synthesizability)
        if not report.ok:
            failed += 1
        if args.verbose or not report.ok or report.warnings:
            print(report.render(verbose=args.verbose))
        else:
            print(f"lint {report.program_name}: OK")
        if args.encoding:
            certificates = verify_all(program)
            bad = [c for c in certificates if not c.certified]
            uncertified += len(bad)
            if bad or args.verbose:
                for certificate in (bad if bad else certificates):
                    print("  " + certificate.render().replace("\n", "\n  "))
            else:
                print(f"  encoding: {len(certificates)} scheme/strategy "
                      f"combo(s) certified")
    print(f"\nlinted {len(names)} workload(s); {failed} with errors"
          + (f"; {uncertified} uncertified encoding combo(s)"
             if args.encoding else ""))
    return 1 if failed or uncertified else 0


def _spec_programs() -> List:
    from .workloads.spec import SPEC_PROFILES, SyntheticSpecProgram
    return [SyntheticSpecProgram(profile) for profile in SPEC_PROFILES]


def cmd_verify_encoding(args: argparse.Namespace) -> int:
    """Statically certify encoding soundness before deployment."""
    import json

    from .analysis import certificates_to_json, verify_all

    programs = [_resolve(name) for name in args.workloads] \
        if args.workloads else [_resolve(name) for name in sorted(WORKLOADS)]
    if args.spec:
        programs.extend(_spec_programs())
    schemes = None if args.scheme == "all" else [args.scheme]
    strategies = (None if args.strategy == "all"
                  else [Strategy.from_name(args.strategy)])

    all_certificates = []
    bad = 0
    for program in programs:
        certificates = verify_all(program, schemes=schemes,
                                  strategies=strategies)
        all_certificates.extend(certificates)
        failing = [c for c in certificates if not c.certified]
        bad += len(failing)
        if failing or args.verbose:
            for certificate in (failing if failing and not args.verbose
                                else certificates):
                print(certificate.render())
        else:
            sites = max(c.instrumented_sites for c in certificates)
            print(f"verify-encoding {program.name}: "
                  f"{len(certificates)} combo(s) certified "
                  f"(<= {sites} instrumented site(s))")
    if args.json:
        payload = certificates_to_json(all_certificates)
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=1, sort_keys=False)
            handle.write("\n")
        print(f"wrote {len(all_certificates)} certificate(s) to "
              f"{args.json}")
    print(f"\nverified {len(programs)} program(s), "
          f"{len(all_certificates)} combo(s); {bad} uncertified")
    return 1 if bad else 0


def cmd_layout(args: argparse.Namespace) -> int:
    """Static heap-layout analysis: adjacency graph + layout plans."""
    import json

    from .analysis import analyze_layout

    names = [name.lower() for name in args.workloads] \
        if args.workloads else sorted(WORKLOADS)
    programs = [_resolve(name) for name in names]
    if args.spec:
        programs.extend(_spec_programs())

    results = []
    total_pairs = 0
    for program in programs:
        result = analyze_layout(program)
        results.append(result)
        total_pairs += len(result.pairs)
        print(result.render(verbose=args.verbose))
    if args.json:
        payload = {"workloads": [result.to_dict() for result in results]}
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=1, sort_keys=False)
            handle.write("\n")
        print(f"wrote {len(results)} layout report(s) to {args.json}")
    print(f"\nanalyzed {len(programs)} program(s); "
          f"{total_pairs} adjacent pair(s)")
    return 1 if total_pairs else 0


def cmd_defend(args: argparse.Namespace) -> int:
    """Run under the online defense with a patch config loaded."""
    program = _resolve(args.workload)
    system = HeapTherapy(program, strategy=Strategy.from_name(args.strategy))
    table = (PatchTable.from_config_file(args.config) if args.config
             else PatchTable.empty())
    run = system.run_defended(table, _input_for(program, args.input))
    print(f"workload: {program.name}, patches loaded: {len(table)}")
    status = 0
    if run.blocked:
        print(f"run BLOCKED by guard page: {run.fault}")
        if args.input == "attack":
            print("attack succeeded: False")
        else:
            status = 1
    elif args.input == "benign":
        works = program.benign_works(run.result)
        print(f"run completed; benign works: {works}")
        status = 0 if works else 1
    else:
        succeeded = program.attack_succeeded(run.result)
        print(f"run completed; attack succeeded: {succeeded}")
        status = 1 if succeeded else 0
    if args.report:
        from .defense.report import DefenseReport
        print()
        print(DefenseReport.from_allocator(run.allocator).render())
    return status


def cmd_explain(args: argparse.Namespace) -> int:
    """Map each configured patch back to its calling context."""
    program = _resolve(args.workload)
    system = HeapTherapy(program, strategy=Strategy.from_name(args.strategy),
                         scheme=args.scheme)
    patches = patch_config.load(args.config)
    for patch in patches:
        explanation = explain_patch(
            program, system.instrumented.codec, patch,
            profile_args=(program.attack_input(),))
        print(explanation.render())
    return 0


def cmd_profile(args: argparse.Namespace) -> int:
    """Print the allocation-context frequency profile."""
    from .allocator.libc import LibcAllocator
    from .core.profiling import AllocationProfile
    from .program.process import Process

    program = _resolve(args.workload)
    system = HeapTherapy(program, strategy=Strategy.from_name(args.strategy))
    profile = AllocationProfile()
    for which in ("attack", "benign"):
        process = Process(program.graph, heap=LibcAllocator(),
                          context_source=system.instrumented.runtime())
        process.run(program, _input_for(program, which))
        profile.ingest(process)
    print(profile.render(limit=args.limit))
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    """Run the concurrent serving engine (see :mod:`repro.serving`).

    The report on stdout is timing-free and byte-identical for any
    ``--workers`` value (modulo the ``workers`` field itself); wall-
    clock telemetry goes to stderr.  Exit 1 when leaks were observed
    (undefended or unpatched vulnerability), 0 otherwise.
    """
    import json as json_mod

    from .serving import (ServingEngine, ServingError, ServingOptions,
                          default_workers)

    patches_text = ""
    if args.patches:
        try:
            with open(args.patches, "r", encoding="utf-8") as handle:
                patches_text = handle.read()
        except OSError as exc:
            raise _usage_error(f"cannot read patches file: {exc}")
    workers = args.workers if args.workers else default_workers()
    options = ServingOptions(
        service=args.service,
        workers=workers,
        requests=args.requests,
        batch_size=args.batch_size,
        defended=not args.native,
        allocator=args.allocator,
        patches_text=patches_text,
        attack_every=args.attack_every,
        shared_pages=args.shared_pages,
        max_admitted=args.max_admitted,
    )
    try:
        with ServingEngine(options) as engine:
            result = engine.serve()
    except ServingError as exc:
        raise _usage_error(str(exc))
    text = json_mod.dumps(result.report, indent=2, sort_keys=True)
    if args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            handle.write(text + "\n")
    else:
        print(text)
    print(f"served {result.report['served']} requests with "
          f"{workers} worker(s) in {result.seconds:.3f}s "
          f"({result.requests_per_second:.0f} req/s wall, "
          f"{result.total_cycles:.0f} simulated cycles)",
          file=sys.stderr)
    return 1 if result.report["outcomes"].get("leak") else 0


def cmd_fleet(args: argparse.Namespace) -> int:
    """Run the fleet immunization loop (see :mod:`repro.fleet`).

    The report on stdout is timing-free and byte-identical for any
    ``--jobs`` value; swap-latency and immunization-time telemetry
    goes to stderr.  Exit 0 when every instance proved post-swap
    immunity, 1 when any did not, 2 on a rejected (tampered, replayed
    or wrongly-keyed) snapshot or a usage error — with a typed
    one-line message, never a traceback.
    """
    import json as json_mod

    from .fleet import FleetError, FleetOptions, RegistryError, run_fleet

    options = FleetOptions(
        service=args.service,
        instances=args.instances,
        attacks=args.attacks,
        requests=args.requests,
        batch_size=args.batch_size,
        jobs=args.jobs,
        allocator=args.allocator,
        max_admitted=args.max_admitted,
        key_text=args.key,
        tamper=args.tamper,
    )
    try:
        result = run_fleet(options)
    except FleetError as exc:
        raise _usage_error(str(exc))
    except RegistryError as exc:
        raise _usage_error(f"{type(exc).__name__}: {exc}")
    text = json_mod.dumps(result.report, indent=2, sort_keys=True)
    if args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            handle.write(text + "\n")
    else:
        print(text)
    telemetry = result.telemetry
    latencies = telemetry["swap_latency"]
    print(f"{options.instances} instance(s) at registry "
          f"v{result.snapshot.version} "
          f"({result.snapshot.content_hash[:12]}…); swap latency "
          f"{min(latencies) * 1e3:.1f}–{max(latencies) * 1e3:.1f} ms; "
          f"fleet immunized in "
          f"{telemetry['immunization_seconds']:.3f}s "
          f"({telemetry['jobs']} job(s))", file=sys.stderr)
    return 0 if result.immune else 1


def cmd_bench(args: argparse.Namespace) -> int:
    """Run the perf-regression harness (see :mod:`repro.bench`)."""
    from .bench.harness import run_bench

    return run_bench(suites=args.suite, scale=args.scale,
                     repeat=args.repeat, out_dir=args.out_dir,
                     baseline=args.baseline,
                     max_regression_pct=args.max_regression,
                     profile=args.profile,
                     verify_equivalence=args.verify_equivalence)


def cmd_encode(args: argparse.Namespace) -> int:
    """Show per-strategy instrumentation statistics."""
    from .core.instrument import instrument

    program = _resolve(args.workload)
    graph = program.graph
    plans = plans_for_all_strategies(graph, graph.allocation_targets)
    print(f"workload: {program.name}; call graph: "
          f"{len(graph.function_names)} functions, {graph.site_count} "
          f"call sites; targets: {', '.join(graph.allocation_targets)}")
    print(f"\n{'strategy':<12} {'sites':>6} {'functions':>10} "
          f"{'inserted bytes':>15}")
    for strategy in Strategy:
        plan = plans[strategy]
        print(f"{strategy.value:<12} {plan.site_count:>6} "
              f"{plan.function_count:>10} {plan.inserted_bytes:>15}")
    print()
    inst = instrument(program, strategy=Strategy.from_name(args.strategy))
    print(inst.verify().render())
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser with all subcommands."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="HeapTherapy+ reproduction command-line interface")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list bundled workloads") \
        .set_defaults(func=cmd_list)

    def common(p):
        p.add_argument("workload", help="workload name (see `list`)")
        p.add_argument("--strategy", default="incremental",
                       help="encoding strategy (fcs/tcs/slim/incremental)")

    p = sub.add_parser("attack", help="run an input against the native "
                                      "program")
    common(p)
    p.add_argument("--input", default="attack",
                   choices=("attack", "benign"))
    p.set_defaults(func=cmd_attack)

    p = sub.add_parser(
        "analyze",
        help="offline patch generation from attack input(s)",
        epilog="exit status: 0 patches generated, 1 no vulnerability "
               "detected, 2 usage error")
    common(p)
    p.add_argument("-o", "--output", help="write the patch config file")
    p.add_argument("--attack", dest="attacks", action="append",
                   choices=("attack", "benign"), metavar="INPUT",
                   help="named input to replay: 'attack' or 'benign'; "
                        "repeatable — each occurrence is replayed and "
                        "reported separately (default: attack)")
    p.add_argument("--static", action="store_true",
                   help="derive speculative patches statically, without "
                        "replaying any attack input")
    p.set_defaults(func=cmd_analyze)

    p = sub.add_parser(
        "diagnose",
        help="multi-process offline diagnosis of an attack corpus",
        description="Fan an attack corpus out over worker processes, "
                    "replay every report under shadow analysis and "
                    "merge the patches into deterministic per-workload "
                    "tables (jobs=N output is bit-identical to "
                    "jobs=1).",
        epilog="exit status: 0 every attack entry diagnosed, 1 some "
               "attack entry produced no patch, 2 usage error")
    p.add_argument("--corpus", metavar="DIR",
                   help="corpus directory of *.json entry files "
                        "(default: the built-in Table II + SAMATE "
                        "attack corpus)")
    p.add_argument("--jobs", type=int, default=1,
                   help="worker processes (0 = host CPU count; "
                        "default 1)")
    p.add_argument("--strategy", default="incremental",
                   help="encoding strategy (fcs/tcs/slim/incremental)")
    p.add_argument("-o", "--out-dir", metavar="DIR",
                   help="write one merged patch config per workload "
                        "into DIR")
    p.add_argument("--json", metavar="PATH",
                   help="write the machine-readable diagnosis report")
    p.add_argument("--shared-pages", action="store_true",
                   help="back worker page frames with shared-memory "
                        "arenas instead of private buffers (no-op "
                        "with --jobs 1)")
    p.set_defaults(func=cmd_diagnose)

    p = sub.add_parser(
        "fuzz",
        help="differential fuzzing of generated vulnerable programs",
        description="Generate seeded program models with planted heap "
                    "bugs and check transparency (empty-table defended "
                    "run identical to the undefended run) and efficacy "
                    "(diagnose-patch-rerun neutralizes the bug; the "
                    "benign twin yields zero patches) for every one. "
                    "Reports are byte-identical for any --jobs value.",
        epilog="exit status: 0 every case passed, 1 property "
               "violation(s) found, 2 usage error")
    p.add_argument("--seed", type=int, default=0,
                   help="first seed of the campaign (default 0)")
    p.add_argument("--count", type=int, default=100,
                   help="number of consecutive seeds (default 100)")
    p.add_argument("--jobs", type=int, default=1,
                   help="worker processes (0 = host CPU count; "
                        "default 1)")
    p.add_argument("--minimize", action="store_true",
                   help="shrink failing cases to minimal reproducers "
                        "before writing them")
    p.add_argument("--json", action="store_true",
                   help="print the machine-readable campaign report")
    p.add_argument("-o", "--out-dir", metavar="DIR",
                   help="write fuzz-repro-<seed>.json for each failing "
                        "seed into DIR")
    p.add_argument("--shared-pages", action="store_true",
                   help="back worker page frames with shared-memory "
                        "arenas instead of private buffers (no-op "
                        "with --jobs 1)")
    p.set_defaults(func=cmd_fuzz)

    p = sub.add_parser(
        "lint",
        help="verify declared call graphs against program behaviour",
        description="Cross-check each workload's declared call graph "
                    "against its extracted behaviour model.",
        epilog="exit status: 0 clean, 1 findings (lint errors or "
               "uncertified encodings), 2 usage error")
    p.add_argument("workloads", nargs="*",
                   help="workload names (default: all)")
    p.add_argument("-v", "--verbose", action="store_true",
                   help="also print informational findings")
    p.add_argument("--encoding", action="store_true",
                   help="additionally run the static encoding-soundness "
                        "verifier on every scheme/strategy combination "
                        "per workload")
    p.add_argument("--synthesizability", action="store_true",
                   help="additionally flag allocation sites with "
                        "unbounded size intervals (the attack-synthesis "
                        "solver abstains on them; WARNING severity)")
    p.set_defaults(func=cmd_lint)

    p = sub.add_parser(
        "synth",
        help="symbolic attack synthesis from static layout plans",
        description="Concretize each seed's static LayoutPlans into "
                    "executable attacks: solve request sizes and the "
                    "overflow length symbolically "
                    "(repro.analysis.symexec), simulate the plan "
                    "against real allocator geometry, validate against "
                    "the native adjacency oracle, then diagnose and "
                    "re-run every synthesized attack under the patched "
                    "defense. Reports are byte-identical for any "
                    "--jobs value; solver abstentions are always "
                    "reported, never silent.",
        epilog="exit status: 0 every concretized attack validated and "
               "defeated, 1 synthesis gap(s) found, 2 usage error")
    p.add_argument("--seed", type=int, default=0,
                   help="first fuzz-generator seed (default 0)")
    p.add_argument("--count", type=int, default=12,
                   help="number of consecutive seeds (default 12)")
    p.add_argument("--spec", dest="specs", action="append",
                   metavar="FILE",
                   help="synthesize from a fuzz spec / reproducer JSON "
                        "file instead of a seed range (repeatable)")
    p.add_argument("--plan", default="all",
                   choices=("all", "sequential", "hole-reuse"),
                   help="restrict to one layout-plan kind "
                        "(default: all)")
    p.add_argument("--jobs", type=int, default=1,
                   help="worker processes (0 = host CPU count; "
                        "default 1)")
    p.add_argument("--json", metavar="PATH",
                   help="write the machine-readable synthesis report "
                        "to PATH")
    p.add_argument("-o", "--out-dir", metavar="DIR",
                   help="write the synthesized attack corpus "
                        "(synth_corpus.json, replayable via "
                        "`repro diagnose --corpus DIR`) into DIR")
    p.add_argument("-v", "--verbose", action="store_true",
                   help="also print per-plan solver models and "
                        "interleaving steps")
    p.set_defaults(func=cmd_synth)

    p = sub.add_parser(
        "verify-encoding",
        help="statically certify CCID injectivity, wrap-freedom and "
             "decoder completeness",
        description="Run the value-set soundness verifier "
                    "(repro.analysis.encverify) over scheme/strategy "
                    "combinations and emit machine-readable "
                    "certificates.",
        epilog="exit status: 0 all combinations certified, 1 findings "
               "(a collision counterexample or an unverifiable plan), "
               "2 usage error")
    p.add_argument("workloads", nargs="*",
                   help="workload names (default: all bundled workloads)")
    p.add_argument("--scheme", default="all",
                   choices=("all", "pcc", "pcce", "deltapath"),
                   help="encoding scheme to verify (default: all)")
    p.add_argument("--strategy", default="all",
                   choices=("all", "fcs", "tcs", "slim", "incremental"),
                   help="targeting strategy to verify (default: all)")
    p.add_argument("--spec", action="store_true",
                   help="also verify the synthetic SPEC-like suite")
    p.add_argument("--json", metavar="PATH",
                   help="write the certificates artifact to PATH")
    p.add_argument("-v", "--verbose", action="store_true",
                   help="print every certificate, not just failures")
    p.set_defaults(func=cmd_verify_encoding)

    p = sub.add_parser(
        "layout",
        help="static heap-layout analysis: size intervals, lifetimes, "
             "adjacency prediction",
        description="Run the attack-input-free heap-layout pass "
                    "(repro.analysis.layout): per-allocation-site size "
                    "intervals, may-live ranges, the static adjacency "
                    "graph with minimal overflow lengths, and candidate "
                    "layout plans.",
        epilog="exit status: 0 no adjacent pairs, 1 adjacency findings, "
               "2 usage error")
    p.add_argument("workloads", nargs="*",
                   help="workload names (default: all bundled workloads)")
    p.add_argument("--spec", action="store_true",
                   help="also analyze the synthetic SPEC-like suite")
    p.add_argument("--json", metavar="PATH",
                   help="write the layout/adjacency artifact to PATH")
    p.add_argument("-v", "--verbose", action="store_true",
                   help="also print per-site summaries and layout plans")
    p.set_defaults(func=cmd_layout)

    p = sub.add_parser("defend", help="run under the online defense")
    common(p)
    p.add_argument("-c", "--config", help="patch configuration file")
    p.add_argument("--input", default="attack",
                   choices=("attack", "benign"))
    p.add_argument("--report", action="store_true",
                   help="print the defense activity report")
    p.set_defaults(func=cmd_defend)

    p = sub.add_parser("explain", help="map patches back to calling "
                                       "contexts")
    common(p)
    p.add_argument("-c", "--config", required=True)
    p.add_argument("--scheme", default="pcc",
                   choices=("pcc", "pcce", "deltapath"))
    p.set_defaults(func=cmd_explain)

    p = sub.add_parser("encode", help="instrumentation statistics per "
                                      "strategy")
    common(p)
    p.set_defaults(func=cmd_encode)

    p = sub.add_parser("profile", help="allocation-context frequency "
                                       "profile over both inputs")
    common(p)
    p.add_argument("--limit", type=int, default=10,
                   help="contexts to print")
    p.set_defaults(func=cmd_profile)

    p = sub.add_parser("serve", help="drive a service through the "
                                     "multi-worker serving engine")
    p.add_argument("--service", choices=("nginx", "mysql"),
                   default="nginx", help="served workload")
    p.add_argument("--workers", type=int, default=1,
                   help="worker processes (0 = host CPU count)")
    p.add_argument("--requests", type=int, default=1024,
                   help="requests to admit")
    p.add_argument("--batch-size", type=int, default=256,
                   help="requests per dispatched batch")
    p.add_argument("--native", action="store_true",
                   help="serve without the defense (baseline)")
    p.add_argument("--allocator", choices=("segregated", "libc"),
                   default="segregated", help="underlying allocator")
    p.add_argument("-c", "--patches", metavar="FILE",
                   help="patch configuration deployed from batch 0")
    p.add_argument("--attack-every", type=int, default=0, metavar="N",
                   help="inject the service's attack request after "
                        "every N benign requests")
    p.add_argument("--shared-pages", action="store_true",
                   help="back worker page frames with shared memory")
    p.add_argument("--max-admitted", type=int, default=0, metavar="N",
                   help="bounded admission: hold at most N admitted "
                        "batches in memory (0 = eager)")
    p.add_argument("--json", metavar="PATH",
                   help="write the report to PATH instead of stdout")
    p.set_defaults(func=cmd_serve)

    p = sub.add_parser("fleet", help="fleet-scale community "
                                     "immunization across N instances")
    p.add_argument("--service", choices=("nginx", "mysql"),
                   default="nginx", help="served workload")
    p.add_argument("--instances", type=int, default=4,
                   help="simulated serving instances")
    p.add_argument("--attacks", type=int, default=4,
                   help="attacks planted per instance stream (>= 2)")
    p.add_argument("--requests", type=int, default=96,
                   help="benign requests per instance")
    p.add_argument("--batch-size", type=int, default=8,
                   help="requests per dispatched batch")
    p.add_argument("--jobs", type=int, default=1,
                   help="instance-level parallelism (0 = host CPUs)")
    p.add_argument("--allocator", choices=("segregated", "libc"),
                   default="segregated", help="underlying allocator")
    p.add_argument("--max-admitted", type=int, default=0, metavar="N",
                   help="bounded admission per instance (0 = eager)")
    p.add_argument("--key", default="repro-fleet-demo-key",
                   metavar="TEXT", help="fleet signing key material")
    p.add_argument("--tamper", choices=("bitflip", "replay",
                                        "wrong-key"),
                   default="", help="corrupt the distribution channel "
                                    "(fault injection)")
    p.add_argument("--json", metavar="PATH",
                   help="write the report to PATH instead of stdout")
    p.set_defaults(func=cmd_fleet)

    from .bench.harness import add_bench_arguments
    p = sub.add_parser("bench", help="run the substrate/service perf "
                                     "harness; emits BENCH_*.json")
    add_bench_arguments(p)
    p.set_defaults(func=cmd_bench)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit status."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
