"""FIFO queue of freed blocks with a byte quota.

Both sides of the system defer buffer reuse this way:

* the **offline analyzer** quarantines *every* freed buffer (2 GiB quota
  by default) so use-after-free accesses hit still-poisoned memory and are
  detected (paper Section V), and
* the **online defense** quarantines only buffers whose allocation context
  matched a use-after-free patch, which — for the same quota — keeps each
  block quarantined far longer, raising the attacker's reuse-uncertainty
  entropy (paper Section VI).

Eviction is strictly FIFO: pushing a block returns whichever old blocks
fell out of quota; the caller then really releases them.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Any, Deque, List, Optional


@dataclass(frozen=True)
class FreedBlock:
    """One deferred-free entry."""

    address: int
    size: int
    #: Caller-defined payload (e.g. the analyzer's buffer record).
    payload: Any = None


class FreedBlockQueue:
    """Byte-quota-bounded FIFO of freed blocks."""

    def __init__(self, quota_bytes: int) -> None:
        if quota_bytes <= 0:
            raise ValueError("quota must be positive")
        self.quota_bytes = quota_bytes
        self._queue: Deque[FreedBlock] = deque()
        self._held_bytes = 0
        #: Lifetime counters for reports.
        self.pushed = 0
        self.evicted = 0

    def push(self, block: FreedBlock) -> List[FreedBlock]:
        """Enqueue ``block``; return blocks evicted to stay within quota.

        A block larger than the whole quota is returned immediately (it
        cannot be held), matching the overflow discussion in Section IX.
        """
        self.pushed += 1
        if block.size > self.quota_bytes:
            self.evicted += 1
            return [block]
        self._queue.append(block)
        self._held_bytes += block.size
        evictions: List[FreedBlock] = []
        while self._held_bytes > self.quota_bytes:
            old = self._queue.popleft()
            self._held_bytes -= old.size
            self.evicted += 1
            evictions.append(old)
        return evictions

    def drain(self) -> List[FreedBlock]:
        """Remove and return everything (process teardown)."""
        drained = list(self._queue)
        self._queue.clear()
        self._held_bytes = 0
        return drained

    def blocks(self) -> List[FreedBlock]:
        """Non-destructive snapshot, oldest first (for inspection)."""
        return list(self._queue)

    def __contains__(self, address: int) -> bool:
        return any(block.address == address for block in self._queue)

    def find(self, address: int) -> Optional[FreedBlock]:
        """The queued block at ``address``, if still quarantined."""
        for block in self._queue:
            if block.address == address:
                return block
        return None

    @property
    def held_bytes(self) -> int:
        """Bytes currently quarantined."""
        return self._held_bytes

    def __len__(self) -> int:
        return len(self._queue)
