"""Small shared infrastructure used by several subsystems."""

from .fifo import FreedBlock, FreedBlockQueue

__all__ = ["FreedBlock", "FreedBlockQueue"]
