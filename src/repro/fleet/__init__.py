"""Fleet-scale community immunization (signed patch distribution).

The registry half (:mod:`repro.fleet.registry`) publishes versioned,
content-addressed, HMAC-signed patch tables with deterministic
reconciliation; the engine half (:mod:`repro.fleet.engine`) runs the
observe → diagnose → publish → immunize loop across N simulated
serving instances, hot-swapping verified tables mid-serve.
"""

from .engine import (
    FLEET_REPORT_SCHEMA,
    TAMPER_MODES,
    FleetError,
    FleetOptions,
    FleetResult,
    run_fleet,
)
from .registry import (
    SIGNATURE_DOMAIN,
    SNAPSHOT_SCHEMA,
    ContentMismatch,
    PatchRegistry,
    RegistryError,
    SignatureMismatch,
    SignedTable,
    StaleVersion,
    Subscriber,
    content_hash,
    sign_table,
    table_height,
)

__all__ = [
    "FLEET_REPORT_SCHEMA",
    "TAMPER_MODES",
    "FleetError",
    "FleetOptions",
    "FleetResult",
    "run_fleet",
    "SIGNATURE_DOMAIN",
    "SNAPSHOT_SCHEMA",
    "ContentMismatch",
    "PatchRegistry",
    "RegistryError",
    "SignatureMismatch",
    "SignedTable",
    "StaleVersion",
    "Subscriber",
    "content_hash",
    "sign_table",
    "table_height",
]
