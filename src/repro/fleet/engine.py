"""Fleet-scale community immunization over N serving instances.

The end-to-end loop the companion paper sketches, run as one
deterministic experiment:

1. **Observe** — instance 0 serves its request mix with planted attacks
   under an *empty* patch table; the exploits land (``leak`` outcomes).
2. **Diagnose & publish** — the service's diagnosis hook emits the
   ``{FUN, CCID, T}`` patches for the observed attack; they are
   submitted to the :class:`~repro.fleet.registry.PatchRegistry`, which
   publishes a signed, content-addressed snapshot.
3. **Immunize** — every instance subscribes (HMAC verification plus
   replay protection), then hot-swaps the verified table into its
   running :class:`~repro.defense.interpose.DefendedAllocator` at a
   batch boundary mid-serve — no restart.  Attacks before the swap
   still leak (the instance was vulnerable); attacks after the swap
   fault into the guard page and are recorded ``blocked`` — the
   immunity proof, per instance.

The canonical fleet report is timing-free and a pure function of the
options, so runs with different ``jobs`` counts are byte-identical —
instance parallelism is unobservable, exactly like worker parallelism
in the serving engine.  Wall-clock telemetry (per-instance swap latency,
fleet immunization time from first observed attack to the last
instance's proven immunity) rides separately on
:attr:`FleetResult.telemetry`, sourced from the monotone
:attr:`~repro.serving.session.BatchResult.wall` stamps, which are
comparable across forked instance processes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from ..parallel.fanout import fanout_map, resolve_jobs
from ..serving.engine import ServingEngine, ServingOptions
from ..serving.services import serving_registry
from .registry import PatchRegistry, SignedTable, sign_table

#: Fleet report schema identifier (bump on layout changes).
FLEET_REPORT_SCHEMA = "repro/fleet-report/v1"

#: Tamper modes the fault-injection path understands.
TAMPER_MODES = ("bitflip", "replay", "wrong-key")


class FleetError(RuntimeError):
    """Fleet run misconfiguration (picklable message)."""


@dataclass(frozen=True)
class FleetOptions:
    """Everything that shapes one fleet immunization run."""

    service: str = "nginx"
    instances: int = 4
    #: Attacks planted per instance stream (>= 2: the swap needs leaks
    #: on one side and blocks on the other to prove immunity).
    attacks: int = 4
    requests: int = 96
    batch_size: int = 8
    #: Instance-level parallelism (0 = host CPUs).  Unobservable in the
    #: canonical report.
    jobs: int = 1
    allocator: str = "segregated"
    strategy: str = "incremental"
    #: Bounded admission per instance (0 = eager).
    max_admitted: int = 0
    #: Fleet signing key material (UTF-8 text).
    key_text: str = "repro-fleet-demo-key"
    #: Fault injection on the distribution channel: "" (honest),
    #: "bitflip", "replay" or "wrong-key".  Any tampered snapshot is
    #: rejected by every subscriber with a typed RegistryError and no
    #: table is ever swapped in.
    tamper: str = ""


@dataclass(frozen=True)
class _InstanceJob:
    """One instance's picklable work order (fanout item)."""

    index: int
    snapshot_text: str
    key: bytes
    service: str
    requests: int
    batch_size: int
    attack_every: int
    swap_batch: int
    allocator: str
    strategy: str
    max_admitted: int


@dataclass(frozen=True)
class _InstanceResult:
    """One instance's picklable outcome (fanout result)."""

    index: int
    report: Dict[str, Any]
    #: Per-version outcome counts: (version, status) -> count.
    version_outcomes: Tuple[Tuple[int, str, int], ...]
    applied_version: int
    immune: bool
    #: Monotone wall stamps (telemetry only, never in the report).
    swap_latency: float
    immune_wall: float


@dataclass
class FleetResult:
    """One fleet run: canonical report plus wall-clock telemetry."""

    report: Dict[str, Any]
    #: Timing sidecar: ``swap_latency`` per instance (seconds),
    #: ``immunization_seconds`` (first observed attack at instance 0 to
    #: the last instance's proven immunity), ``attack_wall``/
    #: ``immune_walls`` raw monotone stamps, ``jobs`` actually used.
    telemetry: Dict[str, Any]
    snapshot: SignedTable

    @property
    def immune(self) -> bool:
        """Did every instance prove post-swap immunity?"""
        return bool(self.report["fleet_immune"])


def _subscriber_serve(job: _InstanceJob) -> _InstanceResult:
    """One fleet instance: verify the snapshot, serve, hot-swap mid-run.

    Runs in a fanout worker (module-level, picklable in and out).  The
    registry verification happens *here*, on the instance — a tampered
    snapshot raises the typed error out of the fanout and no serving
    engine is ever built, mirroring a site refusing a bad table.
    """
    from .registry import Subscriber

    snapshot = SignedTable.loads(job.snapshot_text)
    subscriber = Subscriber(job.key)
    subscriber.accept(snapshot)  # typed RegistryError on tamper/replay
    options = ServingOptions(
        service=job.service,
        workers=1,
        requests=job.requests,
        batch_size=job.batch_size,
        attack_every=job.attack_every,
        allocator=job.allocator,
        strategy=job.strategy,
        max_admitted=job.max_admitted,
        swap_schedule=((job.swap_batch, snapshot.config_text),),
    )
    with ServingEngine(options) as engine:
        result = engine.serve()
    new_version = max(result.report["table_versions"])
    old_version = min(result.report["table_versions"])
    counts: Dict[Tuple[int, str], int] = {}
    last_old_wall = 0.0
    first_new_wall = 0.0
    immune_wall = 0.0
    for batch in result.batches:
        for status, _ in batch.outcomes:
            key = (batch.table_version, status)
            counts[key] = counts.get(key, 0) + 1
        if batch.table_version == old_version:
            last_old_wall = max(last_old_wall, batch.wall)
        elif not first_new_wall:
            first_new_wall = batch.wall
        if (not immune_wall and batch.table_version == new_version
                and any(status == "blocked"
                        for status, _ in batch.outcomes)):
            immune_wall = batch.wall
    post_leaks = counts.get((new_version, "leak"), 0)
    post_blocked = counts.get((new_version, "blocked"), 0)
    immune = new_version > old_version and post_leaks == 0 \
        and post_blocked > 0
    return _InstanceResult(
        index=job.index,
        report=result.report,
        version_outcomes=tuple(sorted(
            (version, status, count)
            for (version, status), count in counts.items())),
        applied_version=subscriber.applied_version,
        immune=immune,
        swap_latency=max(0.0, first_new_wall - last_old_wall),
        immune_wall=immune_wall,
    )


def _tamper_snapshot(snapshot: SignedTable, mode: str,
                     registry: PatchRegistry, key: bytes) -> SignedTable:
    """Corrupt the distribution channel for the fault-injection tests."""
    if mode == "bitflip":
        # One flipped byte in transit; the content address no longer
        # matches the table bytes.
        text = snapshot.config_text
        flipped = text[:-1] + chr(ord(text[-1]) ^ 0x01) if text \
            else "\x01"
        return SignedTable(version=snapshot.version,
                           content_hash=snapshot.content_hash,
                           config_text=flipped,
                           signature=snapshot.signature)
    if mode == "replay":
        # Re-send the pre-immunization snapshot (v0, empty table).
        return registry.history[0]
    if mode == "wrong-key":
        evil = key + b"-evil"
        return SignedTable(version=snapshot.version,
                           content_hash=snapshot.content_hash,
                           config_text=snapshot.config_text,
                           signature=sign_table(evil, snapshot.version,
                                                snapshot.config_text))
    raise FleetError(f"unknown tamper mode {mode!r}; choose from "
                     f"{', '.join(TAMPER_MODES)}")


def _attack_plan(requests: int, attacks: int,
                 batch_size: int) -> Tuple[int, int]:
    """Choose ``(attack_every, swap_batch)`` with attacks on both sides.

    The k-th planted attack (1-based) sits at stream position
    ``k * (attack_every + 1) - 1``; the swap lands at the batch holding
    the middle attack, so earlier attacks prove the vulnerability and
    later ones prove the immunity.
    """
    if attacks < 2:
        raise FleetError(
            f"attacks must be >= 2 (one to leak, one to block), "
            f"got {attacks}")
    every = requests // attacks
    if every < 1:
        raise FleetError(
            f"requests={requests} cannot fit {attacks} attacks")
    n_attacks = requests // every
    positions = [k * (every + 1) - 1 for k in range(1, n_attacks + 1)]
    batches = [pos // batch_size for pos in positions]
    swap_batch = batches[len(batches) // 2]
    if batches[0] >= swap_batch or batches[-1] < swap_batch:
        raise FleetError(
            f"cannot place the swap with attacks on both sides "
            f"(attack batches {batches}); raise requests or shrink "
            f"batch_size")
    return every, swap_batch


def run_fleet(options: FleetOptions) -> FleetResult:
    """Run the observe → diagnose → publish → immunize loop.

    Raises :class:`FleetError` on misconfiguration and lets the typed
    :class:`~repro.fleet.registry.RegistryError` family propagate when
    the distribution channel is tampered — callers map those to the
    usage-error exit convention.
    """
    if options.instances < 1:
        raise FleetError(
            f"instances must be >= 1, got {options.instances}")
    registry_entry = serving_registry().get(options.service)
    if registry_entry is None:
        raise FleetError(f"unknown service {options.service!r}")
    if registry_entry.attack_token is None \
            or registry_entry.diagnose is None:
        raise FleetError(
            f"service {options.service!r} has no attack path to "
            f"immunize against (needs attack_token and diagnose)")
    key = options.key_text.encode("utf-8")
    every, swap_batch = _attack_plan(options.requests, options.attacks,
                                     options.batch_size)

    # Phase A: instance 0 serves under the empty table and observes the
    # attacks landing.
    observe_options = ServingOptions(
        service=options.service, workers=1, requests=options.requests,
        batch_size=options.batch_size, attack_every=every,
        allocator=options.allocator, strategy=options.strategy,
        max_admitted=options.max_admitted)
    with ServingEngine(observe_options) as engine:
        observed = engine.serve()
        program, codec = engine.program, engine.codec
    attack_wall = 0.0
    for batch in observed.batches:
        if any(status == "leak" for status, _ in batch.outcomes):
            attack_wall = batch.wall
            break
    leaks = observed.report["outcomes"].get("leak", 0)
    if not leaks:
        raise FleetError(
            f"instance 0 observed no successful attacks under the "
            f"empty table — nothing to diagnose "
            f"(outcomes: {observed.report['outcomes']})")

    # Phase B: diagnose and publish the signed table.
    patches = registry_entry.diagnose(program, codec)
    registry = PatchRegistry(key)
    snapshot = registry.submit(patches)
    if snapshot.version == 0:
        raise FleetError("diagnosis produced an empty patch set")
    delivered = snapshot if not options.tamper else _tamper_snapshot(
        snapshot, options.tamper, registry, key)

    # Phase C: every instance verifies and hot-swaps mid-serve.
    jobs = [
        _InstanceJob(
            index=index, snapshot_text=delivered.dumps(), key=key,
            service=options.service, requests=options.requests,
            batch_size=options.batch_size, attack_every=every,
            swap_batch=swap_batch, allocator=options.allocator,
            strategy=options.strategy, max_admitted=options.max_admitted)
        for index in range(options.instances)
    ]
    instances = fanout_map(_subscriber_serve, jobs,
                           jobs=resolve_jobs(options.jobs))

    fleet_immune = all(inst.immune for inst in instances)
    report: Dict[str, Any] = {
        "schema": FLEET_REPORT_SCHEMA,
        "service": options.service,
        "instances": options.instances,
        "requests": options.requests,
        "batch_size": options.batch_size,
        "attacks": options.attacks,
        "attack_every": every,
        "swap_batch": swap_batch,
        "max_admitted": options.max_admitted,
        "allocator": options.allocator,
        "strategy": options.strategy,
        "registry": {
            "version": snapshot.version,
            "content_hash": snapshot.content_hash,
            "signature": snapshot.signature,
        },
        "observed": {
            "outcomes": observed.report["outcomes"],
            "outcomes_digest": observed.report["outcomes_digest"],
        },
        "instance_reports": [
            {
                "index": inst.index,
                "applied_version": inst.applied_version,
                "table_versions": inst.report["table_versions"],
                "outcomes": inst.report["outcomes"],
                "outcomes_digest": inst.report["outcomes_digest"],
                "version_outcomes": [list(row)
                                     for row in inst.version_outcomes],
                "immune": inst.immune,
            }
            for inst in instances
        ],
        "immune_instances": sum(inst.immune for inst in instances),
        "fleet_immune": fleet_immune,
    }
    immune_walls = [inst.immune_wall for inst in instances]
    immunization = 0.0
    if fleet_immune and attack_wall and all(immune_walls):
        immunization = max(0.0, max(immune_walls) - attack_wall)
    telemetry: Dict[str, Any] = {
        "jobs": resolve_jobs(options.jobs),
        "attack_wall": attack_wall,
        "immune_walls": immune_walls,
        "swap_latency": [inst.swap_latency for inst in instances],
        "immunization_seconds": immunization,
    }
    return FleetResult(report=report, telemetry=telemetry,
                       snapshot=snapshot)
