"""The fleet patch registry: versioned, content-addressed, signed tables.

The arXiv "code-less patching" companion of the paper spells out the
endgame of configuration-only heap patches: *community immunization* —
one site diagnoses an attack, and every site deploys the resulting
``{FUN, CCID, T}`` patch table without rebuilding or restarting anything.
For that to be safe at fleet scale, the distribution channel needs three
properties this module provides:

* **Content addressing** — a published table is identified by the SHA-256
  of its canonical configuration text (:meth:`PatchTable.serialize` is a
  content hash by construction: same patches ⇒ same bytes).  Two
  registries holding the same patches publish byte-identical snapshots.
* **Authenticity** — every snapshot carries an HMAC-SHA256 signature
  over the canonical bytes under the fleet key.  A subscriber verifies
  before swapping; a bit-flipped table, a replayed stale version or a
  signature under the wrong key is rejected with a typed error and the
  running table stays in place.
* **Deterministic reconciliation** — submissions merge through
  :func:`repro.patch.model.merge_patches`, whose conflict policy (widest
  vulnerability mask, unioned params) is commutative, associative and
  idempotent.  The registry's version number is not a wall-clock or
  submission counter but the table's *height* — the number of
  ``(key, vulnerability-bit)`` and ``(key, param)`` atoms it contains.
  Merging only ever adds atoms, so the height is monotone, strictly
  increases exactly when the content changes, and is independent of the
  order or partitioning of submissions.  Hence any two registries that
  receive the same patch sets — in any permutation, grouped any way —
  converge to byte-identical state: same version, same content hash,
  same canonical text, same signature.

The protocol is deliberately defense-agnostic: a snapshot is "canonical
patch-configuration bytes plus provenance", so alternative backends
(CAMP-style seglists, shadow-bound metadata) can ride the same channel
as long as their patches serialize canonically.
"""

from __future__ import annotations

import hashlib
import hmac
import json
from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Tuple

from ..defense.patch_table import PatchTable
from ..patch import config as patch_config
from ..patch.model import HeapPatch, merge_patches

#: Wire-format identifier mixed into every signature, so tables signed
#: for a future incompatible layout can never verify under this one.
SIGNATURE_DOMAIN = b"repro/fleet-table/v1"

#: Snapshot JSON schema identifier.
SNAPSHOT_SCHEMA = "repro/fleet-snapshot/v1"


class RegistryError(ValueError):
    """Base class for registry protocol violations (picklable)."""


class SignatureMismatch(RegistryError):
    """The snapshot's HMAC does not verify: tampered bytes or wrong key."""


class StaleVersion(RegistryError):
    """A replayed snapshot at or below the subscriber's applied version."""


class ContentMismatch(RegistryError):
    """The snapshot's content hash does not match its table bytes."""


def table_height(patches: Iterable[HeapPatch]) -> int:
    """The grow-only version counter: atoms contained in the table.

    One atom per ``(patch key, vulnerability bit)`` plus one per
    ``(patch key, param)``.  :func:`merge_patches` unions masks and
    params and never removes a key, so a merge's height is ≥ every
    input's and strictly greater than the current table's exactly when
    the merged content differs — the monotonicity the replay protection
    leans on, with no dependence on submission order or grouping.
    """
    return sum(bin(int(patch.vuln)).count("1") + len(patch.params)
               for patch in patches)


def content_hash(config_text: str) -> str:
    """SHA-256 of the canonical configuration text (the content address)."""
    return hashlib.sha256(config_text.encode("utf-8")).hexdigest()


def sign_table(key: bytes, version: int, config_text: str) -> str:
    """HMAC-SHA256 over (domain, version, canonical table bytes)."""
    mac = hmac.new(key, digestmod=hashlib.sha256)
    mac.update(SIGNATURE_DOMAIN)
    mac.update(b"\x00" + str(version).encode("ascii") + b"\x00")
    mac.update(config_text.encode("utf-8"))
    return mac.hexdigest()


@dataclass(frozen=True)
class SignedTable:
    """One published registry snapshot (immutable, picklable).

    Everything a subscriber needs to verify-then-swap: the monotone
    version, the content address, the canonical configuration text and
    the fleet signature.  ``config_text`` is the same wire format the
    serving engine ships to workers, so a verified snapshot plugs
    straight into :class:`~repro.serving.handle.PatchTableHandle`.
    """

    version: int
    content_hash: str
    config_text: str
    signature: str

    def verify(self, key: bytes) -> None:
        """Check integrity and authenticity; raise a typed error if not.

        Content is checked before the MAC so a corrupted snapshot is
        classified as precisely as possible; both failures are
        :class:`RegistryError` subclasses, and neither ever installs
        anything.
        """
        if content_hash(self.config_text) != self.content_hash:
            raise ContentMismatch(
                f"snapshot v{self.version}: table bytes do not match the "
                f"content address {self.content_hash[:12]}… — refusing a "
                f"corrupted table")
        expected = sign_table(key, self.version, self.config_text)
        if not hmac.compare_digest(expected, self.signature):
            raise SignatureMismatch(
                f"snapshot v{self.version} "
                f"({self.content_hash[:12]}…): HMAC verification failed "
                f"— tampered table or wrong fleet key")

    def table(self) -> PatchTable:
        """Materialize the frozen patch table this snapshot describes."""
        return PatchTable(patch_config.loads(self.config_text))

    def to_json(self) -> Dict[str, Any]:
        """Plain-data snapshot document (for artifacts and transport)."""
        return {
            "schema": SNAPSHOT_SCHEMA,
            "version": self.version,
            "content_hash": self.content_hash,
            "config_text": self.config_text,
            "signature": self.signature,
        }

    @staticmethod
    def from_json(doc: Dict[str, Any]) -> "SignedTable":
        """Parse a snapshot document (schema-checked)."""
        if doc.get("schema") != SNAPSHOT_SCHEMA:
            raise RegistryError(
                f"unknown snapshot schema {doc.get('schema')!r} "
                f"(expected {SNAPSHOT_SCHEMA})")
        try:
            return SignedTable(
                version=int(doc["version"]),
                content_hash=str(doc["content_hash"]),
                config_text=str(doc["config_text"]),
                signature=str(doc["signature"]))
        except KeyError as exc:
            raise RegistryError(
                f"snapshot document missing field {exc}") from None

    def dumps(self) -> str:
        """Canonical JSON serialization (sorted keys, stable bytes)."""
        return json.dumps(self.to_json(), indent=2, sort_keys=True) + "\n"

    @staticmethod
    def loads(text: str) -> "SignedTable":
        """Parse :meth:`dumps` output."""
        return SignedTable.from_json(json.loads(text))


class PatchRegistry:
    """One registry replica: merge submissions, publish signed snapshots.

    State is a pure function of the *set* of patches ever submitted —
    submissions commute, associate and are idempotent (inherited from
    :func:`merge_patches`), and the version is the content-derived
    height — so replicas fed the same submissions in any order converge
    to byte-identical :attr:`state`.  ``history`` records the distinct
    versions this replica moved through, for audit; it is the one
    order-dependent quantity and is deliberately excluded from the
    canonical state.
    """

    def __init__(self, key: bytes,
                 table: PatchTable = None) -> None:  # type: ignore[assignment]
        if not isinstance(key, (bytes, bytearray)) or not key:
            raise RegistryError("fleet key must be non-empty bytes")
        self._key = bytes(key)
        initial = table if table is not None else PatchTable.empty()
        if not initial.frozen:
            raise RegistryError("registry tables must be frozen")
        self._patches: List[HeapPatch] = merge_patches([initial.patches])
        self._state = self._publish()
        self._history: List[SignedTable] = [self._state]

    def _publish(self) -> SignedTable:
        text = PatchTable(self._patches).serialize()
        version = table_height(self._patches)
        return SignedTable(
            version=version,
            content_hash=content_hash(text),
            config_text=text,
            signature=sign_table(self._key, version, text))

    # -- read side -----------------------------------------------------

    @property
    def state(self) -> SignedTable:
        """The current signed snapshot (canonical, convergent)."""
        return self._state

    @property
    def version(self) -> int:
        """The current table height."""
        return self._state.version

    @property
    def patches(self) -> Tuple[HeapPatch, ...]:
        """The merged patches, in canonical sort order."""
        return tuple(self._patches)

    @property
    def history(self) -> Tuple[SignedTable, ...]:
        """Distinct snapshots this replica published, oldest first."""
        return tuple(self._history)

    # -- write side ----------------------------------------------------

    def submit(self, patches: Iterable[HeapPatch]) -> SignedTable:
        """Merge a patch set into the registry; publish if it changed.

        Resubmitting already-contained patches is a no-op (idempotence):
        the version does not move and nothing new is published, so a
        site can safely re-announce its diagnosis after a reconnect.
        """
        merged = merge_patches([self._patches, patches])
        if merged == self._patches:
            return self._state
        self._patches = merged
        self._state = self._publish()
        self._history.append(self._state)
        return self._state

    def reconcile(self, snapshot: SignedTable) -> SignedTable:
        """Merge a *peer registry's* verified snapshot into this one.

        The peer's snapshot is verified first (same key fleet-wide);
        its patches then submit like any local diagnosis.  Because the
        merge is a join in the patch-set lattice, ``a.reconcile(b.state)``
        and ``b.reconcile(a.state)`` leave both replicas with
        byte-identical state — the anti-entropy step of the protocol.
        """
        snapshot.verify(self._key)
        return self.submit(patch_config.loads(snapshot.config_text))


class Subscriber:
    """Replay-protected snapshot verification for one fleet site.

    Tracks the highest registry version this site has applied; a
    snapshot is accepted exactly once per content change, in monotone
    version order.  The verified table is returned ready to hand to
    :meth:`PatchTableHandle.swap <repro.serving.handle.PatchTableHandle>`
    or :meth:`DefendedAllocator.swap_table
    <repro.defense.interpose.DefendedAllocator.swap_table>`.
    """

    def __init__(self, key: bytes, applied_version: int = 0) -> None:
        self._key = bytes(key)
        self.applied_version = applied_version

    def accept(self, snapshot: SignedTable) -> PatchTable:
        """Verify a snapshot and mark it applied; raise typed errors.

        Rejection order: integrity/authenticity first (a forged version
        number must never influence replay bookkeeping), then replay
        protection against the monotone version.
        """
        snapshot.verify(self._key)
        if snapshot.version <= self.applied_version:
            raise StaleVersion(
                f"snapshot v{snapshot.version} replayed at or below the "
                f"applied version v{self.applied_version} — refusing to "
                f"roll back or re-apply")
        table = snapshot.table()
        self.applied_version = snapshot.version
        return table
