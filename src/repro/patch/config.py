"""The patch configuration file — "Heap Patches as Configuration".

Installing a patch means appending a line to this file; the online defense
library reads it at program initialization (paper Figure 5).  The format
is a plain text, diff-friendly, one patch per line::

    # HeapTherapy+ patch configuration
    fun=malloc ccid=0x27a26f128c05ca5b type=overflow|uninit
    fun=realloc ccid=0xdef0bf72444d7d5a type=uaf quota=1048576

Comments (``#``) and blank lines are ignored.  Duplicate keys merge their
vulnerability masks, mirroring how two patches for the same context simply
union their defenses.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, Iterable, List, Tuple, Union

from ..vulntypes import VulnType
from .model import HeapPatch

HEADER = "# HeapTherapy+ patch configuration"


class PatchConfigError(ValueError):
    """Malformed configuration text."""


def dumps(patches: Iterable[HeapPatch]) -> str:
    """Serialize patches to configuration text."""
    lines = [HEADER]
    lines.extend(patch.render() for patch in patches)
    return "\n".join(lines) + "\n"


def loads(text: str) -> List[HeapPatch]:
    """Parse configuration text into patches (duplicates merged)."""
    merged: Dict[Tuple[str, int], HeapPatch] = {}
    for line_no, raw_line in enumerate(text.splitlines(), start=1):
        line = raw_line.strip()
        if not line or line.startswith("#"):
            continue
        fields: Dict[str, str] = {}
        extra: List[Tuple[str, str]] = []
        for token in line.split():
            if "=" not in token:
                raise PatchConfigError(
                    f"line {line_no}: expected key=value, got {token!r}")
            key, _, value = token.partition("=")
            if key in ("fun", "ccid", "type"):
                if key in fields:
                    raise PatchConfigError(
                        f"line {line_no}: duplicate field {key!r}")
                fields[key] = value
            else:
                extra.append((key, value))
        for required in ("fun", "ccid", "type"):
            if required not in fields:
                raise PatchConfigError(
                    f"line {line_no}: missing field {required!r}")
        try:
            ccid = int(fields["ccid"], 0)
        except ValueError:
            raise PatchConfigError(
                f"line {line_no}: bad ccid {fields['ccid']!r}") from None
        vuln = VulnType.parse(fields["type"])
        patch = HeapPatch(fields["fun"], ccid, vuln, tuple(extra))
        existing = merged.get(patch.key)
        if existing is not None:
            patch = HeapPatch(patch.fun, patch.ccid,
                              existing.vuln | patch.vuln,
                              existing.params + patch.params)
        merged[patch.key] = patch
    return list(merged.values())


def save(patches: Iterable[HeapPatch], path: Union[str, Path]) -> None:
    """Write a configuration file."""
    Path(path).write_text(dumps(patches), encoding="utf-8")


def load(path: Union[str, Path]) -> List[HeapPatch]:
    """Read a configuration file."""
    return loads(Path(path).read_text(encoding="utf-8"))
