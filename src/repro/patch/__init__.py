"""Heap patches as configuration: model, file format, offline generator."""

from .config import PatchConfigError, dumps, load, loads, save
from .generator import (
    OfflinePatchGenerator,
    PartitionedResult,
    PatchGenerationResult,
)
from .model import HeapPatch, merge_patches, patch_sort_key

__all__ = [
    "HeapPatch",
    "OfflinePatchGenerator",
    "PartitionedResult",
    "PatchConfigError",
    "PatchGenerationResult",
    "dumps",
    "load",
    "loads",
    "merge_patches",
    "patch_sort_key",
    "save",
]
