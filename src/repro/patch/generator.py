"""The Offline Patch Generator (paper Figure 1, component 2).

Given an instrumented program and an attack input, replay the attack under
the shadow analyzer and turn the grouped warnings into patches.  This is
the heavyweight, run-once half of HeapTherapy+; its output — a handful of
configuration lines — is everything the lightweight online half needs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from ..allocator.libc import LibcAllocator
from ..ccencoding.base import Codec
from ..ccencoding.runtime import EncodingRuntime
from ..machine.errors import MachineError
from ..program.cost import CycleMeter
from ..program.process import Process
from ..program.program import Program
from ..shadow.analyzer import DEFAULT_QUOTA, ShadowAnalyzer
from ..shadow.report import AnalysisReport
from .model import HeapPatch


@dataclass
class PatchGenerationResult:
    """Everything one offline replay produced."""

    patches: List[HeapPatch]
    report: AnalysisReport
    #: The guest program's return value, if it ran to completion.
    program_result: Any = None
    #: Set when the replay died on a machine fault despite the analyzer's
    #: resume-on-warning behaviour (e.g. a wild jump) — patches derived
    #: from warnings up to that point are still emitted.
    crashed: Optional[str] = None
    #: Cycle meter of the replay (base + analysis decomposition); the
    #: parallel diagnosis engine reports its per-category totals.
    meter: Optional[CycleMeter] = None

    @property
    def detected(self) -> bool:
        """True when the replay exposed at least one vulnerability."""
        return bool(self.patches)


class OfflinePatchGenerator:
    """Replays attack inputs under shadow analysis to produce patches."""

    def __init__(self, program: Program, codec: Codec,
                 quarantine_quota: int = DEFAULT_QUOTA,
                 ccid_subspaces: Optional[Tuple[int, int]] = None) -> None:
        self.program = program
        self.codec = codec
        self.quarantine_quota = quarantine_quota
        self.ccid_subspaces = ccid_subspaces

    def replay(self, *attack_args: Any,
               **attack_kwargs: Any) -> PatchGenerationResult:
        """Run the program on one attack input; derive patches.

        The analyzer resumes past warnings, so a single replay can expose
        several vulnerability types (Heartbleed: uninit read + overread).
        """
        allocator = LibcAllocator()
        meter = CycleMeter()
        analyzer = ShadowAnalyzer(
            allocator,
            meter=meter,
            quarantine_quota=self.quarantine_quota,
            ccid_subspaces=self.ccid_subspaces,
        )
        runtime = EncodingRuntime(self.codec, meter=meter)
        process = Process(self.program.graph, monitor=analyzer,
                          context_source=runtime, meter=meter)
        crashed = None
        result = None
        try:
            result = process.run(self.program, *attack_args, **attack_kwargs)
        except MachineError as fault:
            crashed = str(fault)
        patches = self.patches_from_report(analyzer.report)
        return PatchGenerationResult(
            patches=patches,
            report=analyzer.report,
            program_result=result,
            crashed=crashed,
            meter=meter,
        )

    @staticmethod
    def patches_from_report(report: AnalysisReport) -> List[HeapPatch]:
        """The Section V post-processing script: warnings → patches."""
        patches = []
        for (fun, ccid), vuln in sorted(report.group_by_origin().items()):
            patches.append(HeapPatch(fun, ccid, vuln))
        return patches

    def replay_partitioned(self, executions: int, *attack_args: Any,
                           **attack_kwargs: Any) -> "PartitionedResult":
        """The Section IX strategy for memory-heavy use-after-free replays.

        When a single replay would drain the freed-block quota, the CCID
        space is split into ``executions`` subspaces and the attack is
        replayed once per subspace, each execution deferring only the
        frees whose allocation-time CCID falls in its subspace — bounding
        quarantine memory to roughly ``1/executions`` per run.  Patches
        from all runs are merged (duplicate keys union their masks).
        """
        if executions <= 0:
            raise ValueError("executions must be positive")
        runs: List[PatchGenerationResult] = []
        merged: Dict[Tuple[str, int], HeapPatch] = {}
        peak_quarantine = 0
        for index in range(executions):
            generator = OfflinePatchGenerator(
                self.program, self.codec,
                quarantine_quota=self.quarantine_quota,
                ccid_subspaces=(index, executions))
            result = generator.replay(*attack_args, **attack_kwargs)
            runs.append(result)
            for patch in result.patches:
                existing = merged.get(patch.key)
                if existing is not None:
                    patch = HeapPatch(patch.fun, patch.ccid,
                                      existing.vuln | patch.vuln,
                                      existing.params + patch.params)
                merged[patch.key] = patch
        return PartitionedResult(
            patches=list(merged.values()),
            runs=runs,
        )


@dataclass
class PartitionedResult:
    """Merged outcome of a Section IX multi-execution replay."""

    patches: List[HeapPatch]
    runs: List[PatchGenerationResult]

    @property
    def detected(self) -> bool:
        """True when any execution exposed a vulnerability."""
        return bool(self.patches)

    @property
    def executions(self) -> int:
        """How many subspace executions were performed."""
        return len(self.runs)
