"""Heap patches: ``{FUN, CCID, T}`` tuples (paper Sections III & V).

A patch does not change the program — it is configuration consumed by the
online defense generator.  ``FUN`` is the allocation entry point of the
vulnerable buffer, ``CCID`` its allocation-time calling-context ID under
the deployed instrumentation plan, and ``T`` the three-bit vulnerability
mask saying which enhancements to apply.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from ..allocator.base import ALLOCATION_FUNCTIONS
from ..vulntypes import VulnType


@dataclass(frozen=True)
class HeapPatch:
    """One code-less heap patch."""

    fun: str
    ccid: int
    vuln: VulnType
    #: Optional free-form parameters (e.g. a custom quarantine quota).
    params: Tuple[Tuple[str, str], ...] = ()

    def __post_init__(self) -> None:
        if self.fun not in ALLOCATION_FUNCTIONS:
            raise ValueError(
                f"patch FUN must be an allocation function, got {self.fun!r}")
        if self.vuln is VulnType.NONE:
            raise ValueError("patch must carry at least one vulnerability bit")

    @property
    def key(self) -> Tuple[str, int]:
        """Hash-table key: (allocation function, CCID)."""
        return (self.fun, self.ccid)

    def param(self, name: str) -> Optional[str]:
        """Look up an optional parameter by name."""
        for key, value in self.params:
            if key == name:
                return value
        return None

    def render(self) -> str:
        """One config-file line (see :mod:`repro.patch.config`)."""
        parts = [f"fun={self.fun}", f"ccid={self.ccid:#x}",
                 f"type={self.vuln.describe()}"]
        parts.extend(f"{key}={value}" for key, value in self.params)
        return " ".join(parts)

    def __str__(self) -> str:
        return self.render()
