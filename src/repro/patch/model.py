"""Heap patches: ``{FUN, CCID, T}`` tuples (paper Sections III & V).

A patch does not change the program — it is configuration consumed by the
online defense generator.  ``FUN`` is the allocation entry point of the
vulnerable buffer, ``CCID`` its allocation-time calling-context ID under
the deployed instrumentation plan, and ``T`` the three-bit vulnerability
mask saying which enhancements to apply.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from ..allocator.base import ALLOCATION_FUNCTIONS
from ..vulntypes import VulnType


@dataclass(frozen=True)
class HeapPatch:
    """One code-less heap patch."""

    fun: str
    ccid: int
    vuln: VulnType
    #: Optional free-form parameters (e.g. a custom quarantine quota).
    params: Tuple[Tuple[str, str], ...] = ()

    def __post_init__(self) -> None:
        if self.fun not in ALLOCATION_FUNCTIONS:
            raise ValueError(
                f"patch FUN must be an allocation function, got {self.fun!r}")
        if self.vuln is VulnType.NONE:
            raise ValueError("patch must carry at least one vulnerability bit")

    @property
    def key(self) -> Tuple[str, int]:
        """Hash-table key: (allocation function, CCID)."""
        return (self.fun, self.ccid)

    def param(self, name: str) -> Optional[str]:
        """Look up an optional parameter by name."""
        for key, value in self.params:
            if key == name:
                return value
        return None

    def render(self) -> str:
        """One config-file line (see :mod:`repro.patch.config`)."""
        parts = [f"fun={self.fun}", f"ccid={self.ccid:#x}",
                 f"type={self.vuln.describe()}"]
        parts.extend(f"{key}={value}" for key, value in self.params)
        return " ".join(parts)

    def __str__(self) -> str:
        return self.render()


def patch_sort_key(patch: HeapPatch) -> Tuple[str, int, int,
                                              Tuple[Tuple[str, str], ...]]:
    """The canonical total order over patches: ``(fun, ccid, T, params)``.

    Every serialized patch list in the system is emitted in this order so
    that two tables with the same content compare byte-identical
    regardless of how (or on how many processes) they were produced.
    """
    return (patch.fun, patch.ccid, int(patch.vuln), patch.params)


def merge_patches(groups: Iterable[Iterable[HeapPatch]]) -> List[HeapPatch]:
    """Order-independent, deterministic merge of patch groups.

    The conflict policy for two patches sharing a ``(fun, ccid)`` key is
    the *widest* ``T`` — the union of the vulnerability masks — because a
    wider mask only adds defenses, never removes one.  Free-form params
    are unioned, deduplicated, and canonically sorted (also for patches
    that never collide, so the merge is idempotent).  Since mask union
    and set union are commutative and associative, the merged result is
    independent of group order, which is what makes a multi-process
    diagnosis bit-identical to a serial one (see :mod:`repro.parallel`).

    Returns the merged patches in :func:`patch_sort_key` order.
    """
    merged: Dict[Tuple[str, int], HeapPatch] = {}
    for group in groups:
        for patch in group:
            existing = merged.get(patch.key)
            vuln = patch.vuln
            params = patch.params
            if existing is not None:
                vuln |= existing.vuln
                params += existing.params
            canonical = tuple(sorted(set(params)))
            if existing is not None or canonical != patch.params:
                patch = HeapPatch(patch.fun, patch.ccid, vuln, canonical)
            merged[patch.key] = patch
    return sorted(merged.values(), key=patch_sort_key)
