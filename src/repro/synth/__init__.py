"""Attack synthesis: concretize layout plans into defeated attacks.

The dynamic half of the ROADMAP's "automatic attack synthesis" item:
:mod:`repro.synth.engine` consumes the static layout pass's
:class:`~repro.analysis.layout.LayoutPlan` records, solves the heap
geometry symbolically (:mod:`repro.analysis.symexec`), simulates the
interleavings against the real allocator, and closes the loop through
``repro diagnose``.  See ``repro synth --help`` and DESIGN.md §11.
"""

from .engine import (
    PLAN_KINDS,
    corpus_of,
    synthesize_range,
    synthesize_seed,
    synthesize_spec,
    synthesize_specs,
)
from .report import (
    InterleavingStep,
    PlanAttempt,
    STATUS_ABSTAINED,
    STATUS_CONCRETIZED,
    STATUS_UNREALIZED,
    SeedSynthesis,
    SynthAttack,
    SynthReport,
)

__all__ = [
    "InterleavingStep",
    "PLAN_KINDS",
    "PlanAttempt",
    "STATUS_ABSTAINED",
    "STATUS_CONCRETIZED",
    "STATUS_UNREALIZED",
    "SeedSynthesis",
    "SynthAttack",
    "SynthReport",
    "corpus_of",
    "synthesize_range",
    "synthesize_seed",
    "synthesize_spec",
    "synthesize_specs",
]
