"""The heap-layout search engine: LayoutPlans in, defeated attacks out.

PR 6's layout pass predicts adjacency and emits :class:`LayoutPlan`
records — abstract alloc/free interleavings naming sites, not addresses.
This engine turns the fuzz-validated subset of those plans into concrete,
minimized attacks and closes the loop against the defense:

1. **Ground truth.**  :func:`~repro.fuzz.adjacency.observe_adjacency`
   runs the seed's attack natively; only plans whose (source, victim,
   direction) triple matches the observed adjacency are attempted — the
   rest of the static graph is over-approximation by design and skipping
   it is not a gap (the skip count is reported).

2. **Symbolic solve.**  Each plan becomes a tiny
   :class:`~repro.analysis.symexec.Problem`: the source/victim request
   sizes range over their static intervals, the source *chunk* size is a
   monotone function application of allocator geometry
   (:func:`~repro.allocator.chunk.request_to_chunk_size`), and the
   overflow length ``l`` must reach the victim's payload
   (``l >= chunk - src + 1`` forward; ``l >= BACKWARD_MIN_LEN``
   backward) within the generator's :data:`ATTACK_SPAN`.  The solver
   minimizes ``l``; an abstention (unbounded site interval, blown
   budget) is recorded verbatim, never swallowed.

3. **Concrete simulation.**  The plan's interleaving is replayed against
   a *fresh* :class:`~repro.allocator.libc.LibcAllocator` through the
   same API the program uses (``malloc``/``calloc``/``memalign``/
   ``realloc``/``free``), and the solved ``l``-span is checked against
   the real chunk layout read back from boundary tags.  When the
   predicted geometry undershoots (e.g. a ``memalign`` split leaves
   slack between source and victim), the measured gap feeds back as one
   extra ``l >= gap`` constraint and the solve repeats — the
   search-refinement step that makes this a layout *search*, not a
   one-shot guess.

4. **Validate + defeat.**  Each concretized attack becomes an
   :class:`~repro.workloads.corpus.AttackCorpus` entry over the
   ``fuzz:<seed>`` workload; the native observation must cover the
   solved ``l`` (validation), and one diagnose → patch → re-run round
   (the exact construction of the fuzz oracle) must neutralize the
   attack (defeat).  ``repro synth`` fails when any concretized attack
   escapes either check.

Everything is deterministic: no randomness, no wall-clock data in
results, and the fan-out over :func:`~repro.parallel.fanout.fanout_map`
returns seed-order results, so ``--jobs N`` output is byte-identical to
``--jobs 1``.
"""

from __future__ import annotations

from typing import Any, Dict, List, Mapping, Optional, Tuple

from ..allocator.chunk import HEADER_SIZE, read_chunk, request_to_chunk_size
from ..allocator.libc import LibcAllocator, hole_reusable
from ..analysis.intervals import Interval
from ..analysis.layout import (
    BACKWARD_MIN_LEN,
    AllocSiteId,
    LayoutPlan,
    analyze_layout,
)
from ..analysis.symexec import (
    LinExpr,
    Problem,
    Relation,
    SolveResult,
)
from ..core.instrument import instrument
from ..defense.interpose import DefendedAllocator
from ..defense.patch_table import PatchTable
from ..fuzz.adjacency import ObservedAdjacency, observe_adjacency
from ..fuzz.generator import (
    ATTACK_SPAN,
    FuzzSpec,
    build_program,
    spec_for_seed,
    spec_from_dict,
    spec_to_dict,
)
from ..machine.errors import MachineError
from ..parallel.fanout import fanout_map
from ..patch.generator import OfflinePatchGenerator
from ..program.cost import CycleMeter
from ..program.monitor import DirectMonitor
from ..program.process import Process
from ..workloads.corpus import (
    AttackCorpus,
    CorpusEntry,
    fuzz_workload_key,
)
from .report import (
    STATUS_ABSTAINED,
    STATUS_CONCRETIZED,
    STATUS_UNREALIZED,
    InterleavingStep,
    PlanAttempt,
    SeedSynthesis,
    SynthAttack,
    SynthReport,
)

__all__ = [
    "PLAN_KINDS",
    "corpus_of",
    "synthesize_range",
    "synthesize_seed",
    "synthesize_spec",
    "synthesize_specs",
]

#: Plan kinds the layout pass emits (CLI ``--plan`` choices).
PLAN_KINDS: Tuple[str, ...] = ("sequential", "hole-reuse")


# ---------------------------------------------------------------------------
# Symbolic geometry problems
# ---------------------------------------------------------------------------


def _geometry_problem(direction: str, source_size: Interval,
                      victim_size: Interval,
                      extra_min_len: int = 0
                      ) -> Tuple[Problem, LinExpr]:
    """The constraint system for one plan; returns (problem, objective).

    Variables are declared inputs-first (``src``, ``vic``) so the
    enumerator prunes derived quantities (``chunk``, ``l``) early.
    ``extra_min_len`` is the simulation-feedback lower bound on ``l``
    (0 on the first solve).
    """
    problem = Problem()
    src = problem.add_var("src", source_size)
    problem.add_var("vic", victim_size)
    length = LinExpr.var("l")
    if direction == "forward":
        chunk = problem.add_var(
            "chunk", source_size.map(request_to_chunk_size))
        problem.define_monotone("chunk", request_to_chunk_size, src,
                                "request_to_chunk_size")
        problem.add_var("l", Interval(1, ATTACK_SPAN))
        # Reach the victim's payload: the first payload byte sits
        # chunk - src + 1 bytes past the source's last in-bounds byte.
        problem.require(length, Relation.GE,
                        chunk.sub(src).shift(1))
    else:
        problem.add_var("l", Interval(1, ATTACK_SPAN))
        problem.require(length, Relation.GE,
                        LinExpr.of(BACKWARD_MIN_LEN))
    if extra_min_len:
        problem.require(length, Relation.GE, LinExpr.of(extra_min_len))
    return problem, length


# ---------------------------------------------------------------------------
# Concrete simulation against the real allocator
# ---------------------------------------------------------------------------


class _SimulationError(Exception):
    """The interleaving could not be driven as planned."""


def _simulate_alloc(allocator: LibcAllocator, fun: str,
                    size: int) -> int:
    """Drive one allocation through the site's real API."""
    if fun == "malloc":
        return allocator.malloc(size)
    if fun == "calloc":
        return allocator.calloc(1, size)
    if fun == "memalign":
        # The generator's fixed alignment (see GeneratedProgram).
        return allocator.memalign(32, size)
    if fun == "realloc":
        # Mirror the generated program: half-size malloc, then grow.
        initial = allocator.malloc(size // 2)
        return allocator.realloc(initial, size)
    raise _SimulationError(f"unsupported allocation API {fun!r}")


def _simulate(plan: LayoutPlan, sizes: Mapping[AllocSiteId, int],
              overflow_len: int
              ) -> Tuple[Tuple[InterleavingStep, ...], int, int, int]:
    """Replay ``plan`` on a fresh allocator; measure the real geometry.

    Returns ``(steps, src_user, vic_user, required_len)`` where
    ``required_len`` is the overflow length the *simulated* layout
    actually needs to reach the victim's payload (the feedback bound for
    the refinement solve).  Raises :class:`_SimulationError` when a step
    cannot be driven.
    """
    allocator = LibcAllocator()
    live: Dict[AllocSiteId, List[int]] = {}
    steps: List[InterleavingStep] = []
    for step in plan.steps:
        site = step.site
        if step.action == "alloc":
            size = sizes[site]
            address = _simulate_alloc(allocator, site.fun, size)
            live.setdefault(site, []).append(address)
            steps.append(InterleavingStep("alloc", site.describe(),
                                          site.fun, size, address))
        elif step.action == "free":
            stack = live.get(site)
            if not stack:
                raise _SimulationError(
                    f"free of {site.describe()} with no live instance")
            address = stack.pop()
            allocator.free(address)
            steps.append(InterleavingStep("free", site.describe(),
                                          "free", sizes[site], address))
        elif step.action == "overflow":
            stack = live.get(site)
            if not stack:
                raise _SimulationError(
                    f"overflow through {site.describe()} with no live "
                    f"instance")
            steps.append(InterleavingStep(
                "overflow", site.describe(), "overflow", overflow_len,
                stack[-1]))
        else:  # pragma: no cover - plans only emit the three actions
            raise _SimulationError(f"unknown plan action {step.action!r}")

    src_stack = live.get(plan.source)
    vic_stack = live.get(plan.victim)
    if not src_stack or not vic_stack:
        raise _SimulationError("source or victim not live after the plan")
    src_user, vic_user = src_stack[-1], vic_stack[-1]
    # Real geometry from boundary tags, not predictions: memalign
    # splits, realloc growth and bin reuse all show up here.
    vic_chunk = read_chunk(allocator.memory, vic_user - HEADER_SIZE)
    if plan.direction == "forward":
        # First victim payload byte, measured from one past the
        # source's last in-bounds byte.
        required = vic_user - (src_user + sizes[plan.source]) + 1
    else:
        # Last victim payload byte, measured downward from the source's
        # first byte.
        payload_end = vic_chunk.base + vic_chunk.size
        required = src_user - payload_end + 1
    if required < 1:
        raise _SimulationError(
            f"victim is on the wrong side of the source "
            f"(src@{src_user:#x}, vic@{vic_user:#x})")
    return tuple(steps), src_user, vic_user, required


# ---------------------------------------------------------------------------
# Defeat: one diagnose -> patch -> re-run round
# ---------------------------------------------------------------------------


def _run_defended(program: Any,
                  table: PatchTable) -> Tuple[Optional[str], Any]:
    """Re-run the attack under ``table``; return (fault name, outcome).

    The construction mirrors the fuzz oracle's defended run: interposed
    allocator in front of a fresh libc heap, direct monitor, attack
    input.
    """
    instrumented = instrument(program)
    meter = CycleMeter()
    runtime = instrumented.runtime(meter)
    underlying = LibcAllocator()
    defended = DefendedAllocator(underlying, table,
                                 context_source=runtime, meter=meter)
    monitor = DirectMonitor(underlying.memory, defended, meter)
    process = Process(program.graph, monitor=monitor,
                      context_source=runtime, meter=meter)
    try:
        return None, process.run(program, True)
    except MachineError as exc:
        return type(exc).__name__, None


def _defeat(program: Any) -> Tuple[bool, int, str]:
    """One diagnose round; returns (defeated, patch count, detail)."""
    instrumented = instrument(program)
    generator = OfflinePatchGenerator(program, instrumented.codec)
    diagnosis = generator.replay(True)
    if not diagnosis.patches:
        return False, 0, "diagnosis produced no patches"
    table = PatchTable(diagnosis.patches)
    fault, outcome = _run_defended(program, table)
    if fault == "SegmentationFault":
        # A guard-page fault is the defense *working*.
        return True, len(diagnosis.patches), "blocked by guard page"
    if fault is not None:
        return False, len(diagnosis.patches), (
            f"patched run died on {fault}")
    if program.attack_succeeded(outcome):
        return False, len(diagnosis.patches), (
            "attack still succeeded under its patches")
    return True, len(diagnosis.patches), "neutralized"


# ---------------------------------------------------------------------------
# Per-plan concretization
# ---------------------------------------------------------------------------


def _solve_reason(result: SolveResult) -> str:
    return f"solver: {result.describe()}"


def _concretize(spec: FuzzSpec, plan: LayoutPlan,
                site_sizes: Mapping[AllocSiteId, Interval],
                observed: ObservedAdjacency) -> PlanAttempt:
    """Solve, simulate (with one refinement round), and validate."""
    base = dict(plan_kind=plan.kind, direction=plan.direction,
                source=plan.source.describe(),
                victim=plan.victim.describe())
    src_interval = site_sizes.get(plan.source)
    vic_interval = site_sizes.get(plan.victim)
    if src_interval is None or vic_interval is None:
        return PlanAttempt(status=STATUS_UNREALIZED, reason=(
            "plan references a site the summaries do not cover"), **base)

    # The plan's step-1 placeholder: the chunk a hole-reuse plan frees
    # and re-occupies (forward plans allocate the source first).
    first_site = (plan.source if plan.direction == "forward"
                  else plan.victim)
    extra_min_len = 0
    steps: Tuple[InterleavingStep, ...] = ()
    solved = SolveResult(status="abstain", reason="not attempted")
    overflow_len = 0
    for round_no in range(2):
        problem, objective = _geometry_problem(
            plan.direction, src_interval, vic_interval, extra_min_len)
        solved = problem.solve(minimize=objective)
        if solved.abstained:
            return PlanAttempt(status=STATUS_ABSTAINED,
                               reason=_solve_reason(solved), **base)
        if not solved.sat:
            return PlanAttempt(status=STATUS_UNREALIZED,
                               reason=_solve_reason(solved), **base)
        sizes = {plan.source: solved.value("src"),
                 plan.victim: solved.value("vic")}
        overflow_len = solved.value("l")
        if plan.kind == "hole-reuse" and not hole_reusable(
                sizes[first_site], sizes[first_site]):
            return PlanAttempt(status=STATUS_UNREALIZED, reason=(
                "placeholder hole is not reusable (mmap-class "
                "request)"), **base)
        try:
            steps, _src, _vic, required = _simulate(
                plan, sizes, overflow_len)
        except _SimulationError as exc:
            return PlanAttempt(status=STATUS_UNREALIZED,
                               reason=str(exc), **base)
        if overflow_len >= required:
            break
        if round_no == 1 or required > ATTACK_SPAN:
            return PlanAttempt(status=STATUS_UNREALIZED, reason=(
                f"simulated layout needs l >= {required} "
                f"(span budget {ATTACK_SPAN}, solved {overflow_len})"),
                **base)
        # Feed the measured gap back into the constraint system.
        extra_min_len = required

    attack = SynthAttack(
        seed=spec.seed, plan_kind=plan.kind, direction=plan.direction,
        source=plan.source.describe(), victim=plan.victim.describe(),
        overflow_len=overflow_len,
        sizes=solved.assignment,
        steps=steps,
        entry_id=f"synth/{spec.seed}:{plan.kind}",
        workload=fuzz_workload_key(spec.seed))
    validated = observed.overflow_len >= overflow_len
    return PlanAttempt(status=STATUS_CONCRETIZED, attack=attack,
                       validated=validated, **base)


# ---------------------------------------------------------------------------
# Per-seed synthesis
# ---------------------------------------------------------------------------


def synthesize_spec(spec: FuzzSpec,
                    plan_kinds: Tuple[str, ...] = ()) -> SeedSynthesis:
    """Run the full synthesis loop for one spec.

    ``plan_kinds`` restricts which plan kinds are attempted (empty =
    all).  Deterministic: the result is a pure function of the spec.
    """
    program = build_program(spec)
    layout = analyze_layout(program)
    observed = observe_adjacency(spec)
    notes: List[str] = []
    if observed is None:
        return SeedSynthesis(
            seed=spec.seed, kind=spec.kind, alloc_fun=spec.alloc_fun,
            observed=False, plans_total=len(layout.plans),
            notes=("no ground-truth adjacency to synthesize against",))

    site_sizes = {summary.site: summary.size
                  for summary in layout.sites}
    validated_plans: List[LayoutPlan] = []
    skipped = 0
    for plan in layout.plans:
        if (plan.source != observed.source
                or plan.victim != observed.victim
                or plan.direction != observed.direction):
            skipped += 1
            continue
        if plan_kinds and plan.kind not in plan_kinds:
            skipped += 1
            continue
        validated_plans.append(plan)
    if skipped:
        notes.append(f"{skipped} plan(s) skipped (not fuzz-validated "
                     f"or filtered by kind)")

    attempts = [_concretize(spec, plan, site_sizes, observed)
                for plan in validated_plans]

    # One diagnose round per seed, shared across the seed's attacks:
    # they all drive the same program, so the patch set is identical.
    patches = 0
    if any(attempt.concretized for attempt in attempts):
        defeated, patches, detail = _defeat(program)
        notes.append(f"diagnose round: {patches} patch(es), {detail}")
        attempts = [
            PlanAttempt(plan_kind=attempt.plan_kind,
                        direction=attempt.direction,
                        source=attempt.source, victim=attempt.victim,
                        status=attempt.status, reason=attempt.reason,
                        attack=attempt.attack,
                        validated=attempt.validated,
                        defeated=defeated if attempt.concretized
                        else False)
            for attempt in attempts]

    return SeedSynthesis(
        seed=spec.seed, kind=spec.kind, alloc_fun=spec.alloc_fun,
        observed=True, plans_total=len(layout.plans),
        attempts=tuple(attempts), patches=patches, notes=tuple(notes))


def synthesize_seed(seed: int,
                    plan_kinds: Tuple[str, ...] = ()) -> SeedSynthesis:
    """Synthesize for the generator's spec of ``seed``."""
    return synthesize_spec(spec_for_seed(seed), plan_kinds)


def _synth_task(item: Tuple[Dict[str, Any], Tuple[str, ...]]
                ) -> SeedSynthesis:
    """Fan-out task (module-level: picklable for worker processes)."""
    spec_dict, plan_kinds = item
    return synthesize_spec(spec_from_dict(spec_dict), plan_kinds)


# ---------------------------------------------------------------------------
# Batch entry points
# ---------------------------------------------------------------------------


def synthesize_specs(specs: List[FuzzSpec], jobs: int = 1,
                     plan_kinds: Tuple[str, ...] = ()) -> SynthReport:
    """Synthesize every spec, sharded over ``jobs`` worker processes.

    Results come back in input order regardless of ``jobs`` — the
    byte-identity contract of ``repro synth --jobs N``.
    """
    items = [(spec_to_dict(spec), tuple(plan_kinds)) for spec in specs]
    results = tuple(fanout_map(_synth_task, items, jobs))
    return SynthReport(results=results, plan_kinds=tuple(plan_kinds))


def synthesize_range(start: int, count: int, jobs: int = 1,
                     plan_kinds: Tuple[str, ...] = ()) -> SynthReport:
    """Synthesize for the seed range ``[start, start + count)``."""
    if count < 0:
        raise ValueError(f"count must be >= 0, got {count}")
    specs = [spec_for_seed(seed)
             for seed in range(start, start + count)]
    return synthesize_specs(specs, jobs=jobs, plan_kinds=plan_kinds)


def corpus_of(report: SynthReport) -> AttackCorpus:
    """The synthesized attack corpus: one entry per concretized attack.

    Entries reference the deterministic ``fuzz:<seed>`` workload (the
    spec rebuilds from the seed alone), so a saved synthesized corpus
    replays through ``repro diagnose --corpus`` like any hand-written
    one.
    """
    entries = tuple(
        CorpusEntry(attack.entry_id, attack.workload, "attack")
        for result in report.results
        for attack in result.attacks)
    return AttackCorpus(entries, source="synth")
