"""Result records of the attack-synthesis engine.

Everything here is frozen, picklable plain data — the determinism
contract of ``repro synth --jobs N`` (byte-identical output for any
jobs count) requires that per-seed results carry no wall-clock times,
no process identities, and no unordered containers.  The JSON form
(:meth:`SynthReport.to_json`) is the canonical artifact CI uploads next
to the synthesized corpus.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any, Dict, Optional, Tuple

__all__ = [
    "InterleavingStep",
    "PlanAttempt",
    "SeedSynthesis",
    "SynthAttack",
    "SynthReport",
    "STATUS_ABSTAINED",
    "STATUS_CONCRETIZED",
    "STATUS_UNREALIZED",
]

#: ``PlanAttempt.status`` values.
STATUS_CONCRETIZED: str = "concretized"
STATUS_ABSTAINED: str = "abstained"
STATUS_UNREALIZED: str = "unrealized"


@dataclass(frozen=True)
class InterleavingStep:
    """One concrete step of a synthesized alloc/free interleaving."""

    #: ``alloc``, ``free`` or ``overflow``.
    action: str
    #: Canonical allocation-site rendering (``caller->fun#label``).
    site: str
    #: Allocation API driven (``malloc``/``calloc``/``memalign``/
    #: ``realloc``), ``free``, or ``overflow``.
    api: str
    #: Request bytes for allocations, overflow length for the overflow.
    size: int
    #: Simulated user address the step produced / targeted.
    address: int

    def describe(self) -> str:
        """``alloc malloc(96) @0x...`` one-liner."""
        return (f"{self.action} {self.api}({self.size}) "
                f"@{self.address:#x} [{self.site}]")


@dataclass(frozen=True)
class SynthAttack:
    """One concretized attack: a plan made flesh.

    The entry the synthesized corpus carries is ``(workload, input)``;
    the steps and sizes document *why* the entry reproduces the
    predicted adjacency (and let a human replay the reasoning).
    """

    seed: int
    plan_kind: str
    direction: str
    source: str
    victim: str
    #: Solved minimal overflow length (bytes past the source's bounds).
    overflow_len: int
    #: Solver model: ``(variable, value)`` pairs in declaration order.
    sizes: Tuple[Tuple[str, int], ...]
    steps: Tuple[InterleavingStep, ...]
    #: Corpus identity: ``fuzz:<seed>`` workload + attack input.
    entry_id: str
    workload: str

    def to_json(self) -> Dict[str, Any]:
        """Deterministic JSON form."""
        return {
            "seed": self.seed,
            "plan_kind": self.plan_kind,
            "direction": self.direction,
            "source": self.source,
            "victim": self.victim,
            "overflow_len": self.overflow_len,
            "sizes": [[name, value] for name, value in self.sizes],
            "steps": [{
                "action": step.action,
                "site": step.site,
                "api": step.api,
                "size": step.size,
                "address": step.address,
            } for step in self.steps],
            "entry_id": self.entry_id,
            "workload": self.workload,
        }


@dataclass(frozen=True)
class PlanAttempt:
    """Outcome of concretizing one fuzz-validated :class:`LayoutPlan`.

    ``status`` is :data:`STATUS_CONCRETIZED` (an attack was built),
    :data:`STATUS_ABSTAINED` (the solver declined — ``reason`` carries
    its exact words; abstentions are reported, never silent), or
    :data:`STATUS_UNREALIZED` (the solver answered but simulation or
    geometry refuted the plan).
    """

    plan_kind: str
    direction: str
    source: str
    victim: str
    status: str
    reason: str = ""
    attack: Optional[SynthAttack] = None
    #: Native run reproduced the predicted adjacency with an overflow
    #: span covering the solved length.
    validated: bool = False
    #: The diagnose->patch->re-run round neutralized the attack.
    defeated: bool = False

    @property
    def concretized(self) -> bool:
        """True when this attempt produced an attack."""
        return self.status == STATUS_CONCRETIZED

    def to_json(self) -> Dict[str, Any]:
        """Deterministic JSON form."""
        return {
            "plan_kind": self.plan_kind,
            "direction": self.direction,
            "source": self.source,
            "victim": self.victim,
            "status": self.status,
            "reason": self.reason,
            "attack": (self.attack.to_json()
                       if self.attack is not None else None),
            "validated": self.validated,
            "defeated": self.defeated,
        }


@dataclass(frozen=True)
class SeedSynthesis:
    """Everything the engine derived for one fuzz seed."""

    seed: int
    kind: str
    alloc_fun: str
    #: True when the native run yielded a ground-truth adjacency.
    observed: bool
    #: Plans the layout pass emitted for this program (all kinds).
    plans_total: int
    #: Concretization attempts over the fuzz-validated plans.
    attempts: Tuple[PlanAttempt, ...] = ()
    #: Patches the single ``repro diagnose`` round produced.
    patches: int = 0
    notes: Tuple[str, ...] = ()

    @property
    def attacks(self) -> Tuple[SynthAttack, ...]:
        """The concretized attacks, in plan order."""
        return tuple(attempt.attack for attempt in self.attempts
                     if attempt.attack is not None)

    def to_json(self) -> Dict[str, Any]:
        """Deterministic JSON form."""
        return {
            "seed": self.seed,
            "kind": self.kind,
            "alloc_fun": self.alloc_fun,
            "observed": self.observed,
            "plans_total": self.plans_total,
            "attempts": [attempt.to_json()
                         for attempt in self.attempts],
            "patches": self.patches,
            "notes": list(self.notes),
        }


@dataclass(frozen=True)
class SynthReport:
    """One synthesis run over a seed (or spec) set."""

    results: Tuple[SeedSynthesis, ...] = ()
    #: Plan kinds the run was restricted to (empty = all).
    plan_kinds: Tuple[str, ...] = ()

    # -- aggregates --------------------------------------------------------

    @property
    def seeds(self) -> int:
        """Seeds/specs processed."""
        return len(self.results)

    @property
    def plans_attempted(self) -> int:
        """Fuzz-validated plans the solver attempted."""
        return sum(len(result.attempts) for result in self.results)

    @property
    def concretized(self) -> int:
        """Attempts that became attacks."""
        return sum(1 for result in self.results
                   for attempt in result.attempts if attempt.concretized)

    @property
    def abstentions(self) -> int:
        """Attempts the solver abstained on."""
        return sum(1 for result in self.results
                   for attempt in result.attempts
                   if attempt.status == STATUS_ABSTAINED)

    @property
    def validated(self) -> int:
        """Concretized attacks whose native run reproduced the
        prediction."""
        return sum(1 for result in self.results
                   for attempt in result.attempts if attempt.validated)

    @property
    def defeated(self) -> int:
        """Concretized attacks the diagnose round defeated."""
        return sum(1 for result in self.results
                   for attempt in result.attempts
                   if attempt.concretized and attempt.defeated)

    @property
    def gaps(self) -> Tuple[str, ...]:
        """Closed-loop violations: concretized but unvalidated or
        undefeated attempts (these fail ``repro synth``)."""
        problems = []
        for result in self.results:
            for attempt in result.attempts:
                if not attempt.concretized:
                    continue
                where = (f"seed {result.seed} [{attempt.plan_kind}/"
                         f"{attempt.direction}]")
                if not attempt.validated:
                    problems.append(
                        f"{where}: native run did not reproduce the "
                        f"synthesized adjacency")
                if not attempt.defeated:
                    problems.append(
                        f"{where}: attack survived its diagnose round")
        return tuple(problems)

    def to_json(self) -> Dict[str, Any]:
        """Canonical JSON document (identical for any jobs count)."""
        return {
            "schema": 1,
            "seeds": self.seeds,
            "plan_kinds": list(self.plan_kinds),
            "plans_attempted": self.plans_attempted,
            "concretized": self.concretized,
            "abstentions": self.abstentions,
            "validated": self.validated,
            "defeated": self.defeated,
            "gaps": list(self.gaps),
            "results": [result.to_json() for result in self.results],
        }

    def render(self, verbose: bool = False) -> str:
        """Human-readable run summary; ``verbose`` adds per-seed lines."""
        lines = [
            f"synth: {self.seeds} seed(s), "
            f"{self.plans_attempted} fuzz-validated plan(s) attempted, "
            f"{self.concretized} concretized, "
            f"{self.abstentions} solver abstention(s), "
            f"{self.validated} validated natively, "
            f"{self.defeated} defeated"]
        for result in self.results:
            interesting = any(
                attempt.status != STATUS_CONCRETIZED
                or not (attempt.validated and attempt.defeated)
                for attempt in result.attempts)
            if not (verbose or interesting):
                continue
            for attempt in result.attempts:
                flags = []
                if attempt.concretized:
                    flags.append("validated" if attempt.validated
                                 else "NOT-VALIDATED")
                    flags.append("defeated" if attempt.defeated
                                 else "NOT-DEFEATED")
                detail = attempt.reason or ", ".join(flags)
                lines.append(
                    f"  seed {result.seed} ({result.kind}) "
                    f"[{attempt.plan_kind}/{attempt.direction}] "
                    f"{attempt.status}: {detail}")
            for note in result.notes:
                if verbose:
                    lines.append(f"  seed {result.seed}: {note}")
        for gap in self.gaps:
            lines.append(f"  GAP {gap}")
        return "\n".join(lines)

    def render_json(self) -> str:
        """Serialized canonical JSON."""
        return json.dumps(self.to_json(), indent=2, sort_keys=True)
