"""Heap vulnerability types — the three-bit ``T`` field of a patch.

The paper encodes the vulnerability type of a patch (and of the per-buffer
metadata word) as three bits: OVERFLOW, USE-AFTER-FREE, UNINITIALIZED-READ
(Section V).  A buffer can be subject to several at once — Heartbleed is a
mix of uninitialized read and overread — hence a flag set, not an enum.
"""

from __future__ import annotations

import enum


class VulnType(enum.IntFlag):
    """Three-bit vulnerability-type mask used in patches and metadata."""

    NONE = 0
    #: Buffer overflow — both overwrite and overread (red-zone adjacency).
    OVERFLOW = 0b001
    #: Access to a buffer after it was freed.
    USE_AFTER_FREE = 0b010
    #: Read of never-initialized heap memory that reaches a real use.
    UNINIT_READ = 0b100

    @classmethod
    def parse(cls, text: str) -> "VulnType":
        """Parse ``"overflow|uaf"`` style strings (config files)."""
        aliases = {
            "overflow": cls.OVERFLOW,
            "uaf": cls.USE_AFTER_FREE,
            "use-after-free": cls.USE_AFTER_FREE,
            "use_after_free": cls.USE_AFTER_FREE,
            "uninit": cls.UNINIT_READ,
            "uninit-read": cls.UNINIT_READ,
            "uninit_read": cls.UNINIT_READ,
            "uninitialized-read": cls.UNINIT_READ,
            "none": cls.NONE,
        }
        result = cls.NONE
        for part in text.split("|"):
            part = part.strip().lower()
            if not part:
                continue
            try:
                result |= aliases[part]
            except KeyError:
                raise ValueError(f"unknown vulnerability type {part!r}") from None
        return result

    def describe(self) -> str:
        """Canonical ``"overflow|uaf|uninit"`` rendering."""
        if self is VulnType.NONE:
            return "none"
        parts = []
        if self & VulnType.OVERFLOW:
            parts.append("overflow")
        if self & VulnType.USE_AFTER_FREE:
            parts.append("uaf")
        if self & VulnType.UNINIT_READ:
            parts.append("uninit")
        return "|".join(parts)
