"""Multi-threaded guest execution with deterministic lock-step scheduling.

The paper's encoding state ``V`` lives in a *thread-local* integer: every
thread tracks its own calling context while all threads share one heap,
one patch table and one defense.  This module reproduces that setting:

* each guest thread is its own :class:`~repro.program.process.Process`
  (own call stack, own :class:`ContextSource` — the thread-local V),
* all threads share the virtual memory, the underlying allocator and the
  :class:`~repro.defense.interpose.DefendedAllocator`,
* execution interleaves *deterministically*: guest threads run on host
  threads but a token-passing :class:`LockStepScheduler` admits exactly
  one at a time and switches after a seeded number of guest operations,
  so a given seed always produces the identical interleaving.

Preemption points are the places a real thread could be descheduled
while touching shared state: every heap call and guest memory operation
(the :class:`Process` invokes :meth:`LockStepScheduler.checkpoint`).
"""

from __future__ import annotations

import random
import threading
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from .context import ContextSource
from .process import Process
from .program import Program


class ThreadLocalContextSource(ContextSource):
    """The shared defense's view of the per-thread V register.

    The real interposer reads a thread-local integer: whichever thread
    calls ``malloc`` supplies *its* calling-context ID.  This adapter
    gives the (single, shared) :class:`DefendedAllocator` exactly that:
    each guest thread binds its own encoding runtime on startup, and
    ``current_ccid()`` delegates to the binding of the calling host
    thread.
    """

    def __init__(self) -> None:
        self._local = threading.local()

    def bind(self, source: ContextSource) -> None:
        """Associate ``source`` with the calling thread."""
        self._local.source = source

    def current_ccid(self) -> int:
        source = getattr(self._local, "source", None)
        if source is None:
            return 0
        return source.current_ccid()


class LockStepScheduler:
    """Admits one guest thread at a time; switches on a seeded schedule.

    Args:
        seed: determines the switch pattern (same seed → same
            interleaving).
        min_slice / max_slice: bounds on operations a thread runs before
            control is handed to the next runnable thread (round robin).
    """

    def __init__(self, seed: Any = 0, min_slice: int = 1,
                 max_slice: int = 7) -> None:
        if not 1 <= min_slice <= max_slice:
            raise ValueError("need 1 <= min_slice <= max_slice")
        self._rng = random.Random(seed)
        self._min_slice = min_slice
        self._max_slice = max_slice
        self._condition = threading.Condition()
        self._order: List[int] = []
        self._finished: Dict[int, bool] = {}
        self._current: Optional[int] = None
        self._remaining_ops = 0
        #: Total preemption checkpoints observed (for tests).
        self.checkpoints = 0
        #: Number of context switches performed.
        self.switches = 0

    # ------------------------------------------------------------------
    # Registration / lifecycle (called with the condition held)
    # ------------------------------------------------------------------

    def register(self, thread_id: int) -> None:
        """Declare a guest thread before it starts."""
        with self._condition:
            self._order.append(thread_id)
            self._finished[thread_id] = False
            if self._current is None:
                self._current = thread_id
                self._remaining_ops = self._next_slice()

    def _next_slice(self) -> int:
        return self._rng.randint(self._min_slice, self._max_slice)

    def _advance_locked(self) -> None:
        """Hand the token to the next unfinished thread, if any."""
        runnable = [tid for tid in self._order if not self._finished[tid]]
        if not runnable:
            self._current = None
            self._condition.notify_all()
            return
        if self._current in runnable:
            index = (runnable.index(self._current) + 1) % len(runnable)
        else:
            index = 0
        self._current = runnable[index]
        self._remaining_ops = self._next_slice()
        self.switches += 1
        self._condition.notify_all()

    # ------------------------------------------------------------------
    # Guest-side API
    # ------------------------------------------------------------------

    def wait_for_turn(self, thread_id: int) -> None:
        """Block until ``thread_id`` holds the token."""
        with self._condition:
            while self._current != thread_id:
                self._condition.wait()

    def checkpoint(self, thread_id: int) -> None:
        """A preemption point: maybe yield to the next thread."""
        with self._condition:
            self.checkpoints += 1
            self._remaining_ops -= 1
            if self._remaining_ops > 0:
                return
            self._advance_locked()
            while self._current != thread_id:
                if self._current is None:
                    return
                self._condition.wait()

    def finish(self, thread_id: int) -> None:
        """The guest thread completed (or died)."""
        with self._condition:
            self._finished[thread_id] = True
            if self._current == thread_id:
                self._advance_locked()


@dataclass
class GuestThreadResult:
    """Outcome of one guest thread."""

    thread_id: int
    result: Any = None
    error: Optional[BaseException] = None

    @property
    def ok(self) -> bool:
        """True when the guest thread completed without raising."""
        return self.error is None


class ThreadedExecution:
    """Runs several (program, args) jobs as interleaved guest threads.

    Args:
        jobs: list of ``(process, program, args)`` triples.  Each process
            must already be wired to the *shared* monitor/heap and its
            own context source; this class only adds scheduling.
        seed: interleaving seed.
    """

    def __init__(self,
                 jobs: List[Tuple[Process, Program, Tuple[Any, ...]]],
                 seed: Any = 0, min_slice: int = 1,
                 max_slice: int = 7,
                 thread_local_source: Optional[ThreadLocalContextSource]
                 = None) -> None:
        self.jobs = jobs
        self.scheduler = LockStepScheduler(seed, min_slice, max_slice)
        #: When the shared defense reads CCIDs through a
        #: :class:`ThreadLocalContextSource`, each guest thread binds its
        #: process's context source to it at startup.
        self.thread_local_source = thread_local_source

    def run(self) -> List[GuestThreadResult]:
        """Execute all jobs to completion; returns per-thread results."""
        results = [GuestThreadResult(i) for i in range(len(self.jobs))]
        host_threads = []
        for thread_id, (process, program, args) in enumerate(self.jobs):
            process.scheduler = self.scheduler
            process.scheduler_thread_id = thread_id
            self.scheduler.register(thread_id)

            def body(thread_id=thread_id, process=process,
                     program=program, args=args):
                if self.thread_local_source is not None:
                    self.thread_local_source.bind(process.context_source)
                self.scheduler.wait_for_turn(thread_id)
                try:
                    results[thread_id].result = process.run(program, *args)
                except BaseException as exc:  # noqa: BLE001 - reported
                    results[thread_id].error = exc
                finally:
                    self.scheduler.finish(thread_id)

            host = threading.Thread(target=body, name=f"guest-{thread_id}",
                                    daemon=True)
            host_threads.append(host)
        for host in host_threads:
            host.start()
        for host in host_threads:
            host.join(timeout=120)
            if host.is_alive():
                raise RuntimeError("guest thread wedged (scheduler bug?)")
        return results
