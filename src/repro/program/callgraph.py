"""Static call-graph model: functions, call sites, reachability.

The call graph is the structure on which everything in Section IV of the
paper operates.  It is a *multigraph*: two distinct call sites between the
same caller/callee pair are distinct edges, because they produce distinct
calling contexts and each carries its own encoding constant.

Allocation entry points (``malloc`` & co.) appear as ordinary nodes, and a
program's allocation statements are call-site edges into them — exactly how
an LLVM call graph would see calls into libc.  The *target functions* of
targeted calling-context encoding are, for HeapTherapy+, precisely these
allocation nodes.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, Iterator, List, Set, Tuple

from ..allocator.base import ALLOCATION_FUNCTIONS


@dataclass(frozen=True)
class Function:
    """A node in the call graph."""

    name: str
    #: True for allocation API nodes (``malloc``, ``calloc``, ...).
    is_allocation_api: bool = False

    def __repr__(self) -> str:  # pragma: no cover - debugging nicety
        return f"Function({self.name!r})"


@dataclass(frozen=True)
class CallSite:
    """An edge in the call graph: one textual call site in the caller.

    Attributes:
        site_id: dense integer id, unique per graph; doubles as the PCC
            encoding constant seed for this site.
        caller: name of the containing function.
        callee: name of the invoked function.
        label: disambiguates multiple sites between the same pair; unique
            within (caller, callee).
    """

    site_id: int
    caller: str
    callee: str
    label: str = ""

    @property
    def key(self) -> Tuple[str, str, str]:
        """The stable identity of the site across graph rebuilds."""
        return (self.caller, self.callee, self.label)

    def __repr__(self) -> str:  # pragma: no cover - debugging nicety
        suffix = f"#{self.label}" if self.label else ""
        return f"CallSite({self.caller}->{self.callee}{suffix})"


class CallGraphError(ValueError):
    """Malformed call-graph construction or query."""


class CallGraph:
    """A program's static call multigraph.

    Construction is explicit — the program model declares its functions and
    call sites up front, playing the role of the compiler's call-graph
    analysis.  The graph then answers the reachability and branching
    queries the targeted-encoding algorithms need.
    """

    def __init__(self, entry: str = "main") -> None:
        self.entry = entry
        self._functions: Dict[str, Function] = {}
        self._sites: List[CallSite] = []
        self._sites_by_key: Dict[Tuple[str, str, str], CallSite] = {}
        self._out: Dict[str, List[CallSite]] = {}
        self._in: Dict[str, List[CallSite]] = {}
        self._frozen = False
        self.add_function(entry)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @property
    def frozen(self) -> bool:
        """True once the graph is sealed against further construction."""
        return self._frozen

    def freeze(self) -> "CallGraph":
        """Seal the graph; later mutation raises :class:`CallGraphError`.

        Instrumentation plans, codecs, and static analyses all key off
        the site-id numbering; mutating a graph they already saw would
        silently desynchronize CCIDs.  :attr:`Program.graph` freezes the
        cached graph so that cannot happen.  Returns ``self`` for
        chaining.
        """
        self._frozen = True
        return self

    def _mutable(self, what: str) -> None:
        if self._frozen:
            raise CallGraphError(
                f"cannot {what}: call graph is frozen (mutating a graph "
                f"after instrumentation would desynchronize site ids "
                f"and CCIDs); build a new graph instead")

    def add_function(self, name: str) -> Function:
        """Declare a function; idempotent."""
        existing = self._functions.get(name)
        if existing is not None:
            return existing
        self._mutable(f"add function {name!r}")
        fn = Function(name, is_allocation_api=name in ALLOCATION_FUNCTIONS)
        self._functions[name] = fn
        self._out.setdefault(name, [])
        self._in.setdefault(name, [])
        return fn

    def add_call_site(self, caller: str, callee: str,
                      label: str = "") -> CallSite:
        """Declare a call site; callers/callees are auto-declared."""
        self._mutable(f"add call site {caller}->{callee}")
        self.add_function(caller)
        self.add_function(callee)
        key = (caller, callee, label)
        if key in self._sites_by_key:
            raise CallGraphError(
                f"duplicate call site {caller}->{callee}#{label!r}; "
                f"give the second site a distinct label")
        site = CallSite(len(self._sites), caller, callee, label)
        self._sites.append(site)
        self._sites_by_key[key] = site
        self._out[caller].append(site)
        self._in[callee].append(site)
        return site

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------

    def function(self, name: str) -> Function:
        """Return the declared function ``name`` or raise."""
        try:
            return self._functions[name]
        except KeyError:
            raise CallGraphError(f"unknown function {name!r}") from None

    def has_function(self, name: str) -> bool:
        """True if ``name`` is declared."""
        return name in self._functions

    def site(self, caller: str, callee: str, label: str = "") -> CallSite:
        """Return the unique site ``caller->callee#label`` or raise."""
        key = (caller, callee, label)
        site = self._sites_by_key.get(key)
        if site is not None:
            return site
        # Convenience: if exactly one site exists between the pair and no
        # label was given, resolve it.
        if not label:
            candidates = [s for s in self._out.get(caller, ())
                          if s.callee == callee]
            if len(candidates) == 1:
                return candidates[0]
            if len(candidates) > 1:
                raise CallGraphError(
                    f"ambiguous call site {caller}->{callee}: "
                    f"{len(candidates)} sites; pass label=")
        raise CallGraphError(
            f"unknown call site {caller}->{callee}#{label!r}")

    def site_by_id(self, site_id: int) -> CallSite:
        """Return the site with dense id ``site_id``."""
        return self._sites[site_id]

    @property
    def functions(self) -> List[Function]:
        """All declared functions."""
        return list(self._functions.values())

    @property
    def function_names(self) -> List[str]:
        """All declared function names."""
        return list(self._functions)

    @property
    def sites(self) -> List[CallSite]:
        """All call sites, in declaration (= id) order."""
        return list(self._sites)

    @property
    def site_count(self) -> int:
        """Number of call sites."""
        return len(self._sites)

    def out_sites(self, name: str) -> List[CallSite]:
        """Call sites textually inside function ``name``."""
        return list(self._out.get(name, ()))

    def in_sites(self, name: str) -> List[CallSite]:
        """Call sites that invoke function ``name``."""
        return list(self._in.get(name, ()))

    @property
    def allocation_targets(self) -> List[str]:
        """Names of allocation-API nodes present in this graph."""
        return [f.name for f in self._functions.values()
                if f.is_allocation_api]

    # ------------------------------------------------------------------
    # Analyses
    # ------------------------------------------------------------------

    def reachable_to(self, targets: Iterable[str]) -> FrozenSet[str]:
        """Functions from which some target is reachable (targets incl.).

        This is the backward reachability underlying the TCS optimization.
        """
        worklist = deque()
        seen: Set[str] = set()
        for t in targets:
            if t in self._functions and t not in seen:
                seen.add(t)
                worklist.append(t)
        while worklist:
            node = worklist.popleft()
            for site in self._in.get(node, ()):
                if site.caller not in seen:
                    seen.add(site.caller)
                    worklist.append(site.caller)
        return frozenset(seen)

    def reachable_from_entry(self) -> FrozenSet[str]:
        """Functions reachable from the entry point (forward)."""
        worklist = deque([self.entry])
        seen: Set[str] = {self.entry}
        while worklist:
            node = worklist.popleft()
            for site in self._out.get(node, ()):
                if site.callee not in seen:
                    seen.add(site.callee)
                    worklist.append(site.callee)
        return frozenset(seen)

    def is_acyclic(self) -> bool:
        """True if the simple call graph has no cycles (incl. self loops)."""
        # Iterative DFS: synthetic call chains routinely exceed Python's
        # recursion limit, and this predicate guards every encoding build.
        color: Dict[str, int] = {}
        for root in self._functions:
            if color.get(root, 0):
                continue
            color[root] = 1
            stack: List[Tuple[str, List[CallSite], int]] = [
                (root, self._out.get(root, []), 0)]
            while stack:
                node, sites, index = stack[-1]
                if index < len(sites):
                    stack[-1] = (node, sites, index + 1)
                    child = sites[index].callee
                    state = color.get(child, 0)
                    if state == 1:
                        return False
                    if state == 0:
                        color[child] = 1
                        stack.append((child, self._out.get(child, []), 0))
                else:
                    color[node] = 2
                    stack.pop()
        return True

    def back_edges(self) -> FrozenSet[int]:
        """Site ids whose edges close a cycle (DFS back/cross into stack)."""
        color: Dict[str, int] = {}
        back: Set[int] = set()
        for root in self._functions:
            if color.get(root, 0):
                continue
            color[root] = 1
            stack: List[Tuple[str, List[CallSite], int]] = [
                (root, self._out.get(root, []), 0)]
            while stack:
                node, sites, index = stack[-1]
                if index < len(sites):
                    stack[-1] = (node, sites, index + 1)
                    site = sites[index]
                    state = color.get(site.callee, 0)
                    if state == 1:
                        back.add(site.site_id)
                    elif state == 0:
                        color[site.callee] = 1
                        stack.append(
                            (site.callee, self._out.get(site.callee, []), 0))
                else:
                    color[node] = 2
                    stack.pop()
        return frozenset(back)

    def topological_order(self) -> List[str]:
        """All functions, callers before callees; raises on cycles.

        Iterative (deep synthetic call chains exceed the recursion
        limit); declaration order breaks ties, so the order is stable
        across calls on the same graph.
        """
        if not self.is_acyclic():
            raise CallGraphError(
                "topological order requires an acyclic call graph")
        order: List[str] = []
        state: Dict[str, int] = {}
        for root in self._functions:
            if state.get(root, 0):
                continue
            state[root] = 1
            stack: List[Tuple[str, List[CallSite], int]] = [
                (root, self._out.get(root, []), 0)]
            while stack:
                node, sites, index = stack[-1]
                if index < len(sites):
                    stack[-1] = (node, sites, index + 1)
                    child = sites[index].callee
                    if state.get(child, 0) == 0:
                        state[child] = 1
                        stack.append((child, self._out.get(child, []), 0))
                else:
                    state[node] = 2
                    order.append(node)
                    stack.pop()
        order.reverse()
        return order

    def enumerate_contexts(self, target: str,
                           limit: int = 1_000_000
                           ) -> List[Tuple[CallSite, ...]]:
        """All acyclic call paths from entry to ``target``.

        A *calling context* of ``target`` is the sequence of call sites on
        the path.  Used by tests and by enumeration-based decoding; raises
        if the graph is cyclic or the context count exceeds ``limit``.
        """
        if not self.is_acyclic():
            raise CallGraphError(
                "enumerate_contexts requires an acyclic call graph")
        results: List[Tuple[CallSite, ...]] = []
        path: List[CallSite] = []
        # Iterative DFS (deep chains exceed the recursion limit); each
        # stack frame above the first owns the path entry that led to it.
        stack: List[Tuple[str, int]] = [(self.entry, 0)]
        while stack:
            node, index = stack[-1]
            if index == 0 and node == target:
                results.append(tuple(path))
                if len(results) > limit:
                    raise CallGraphError(
                        f"more than {limit} contexts for {target!r}")
                stack.pop()
                if stack:
                    path.pop()
                continue
            sites = self._out.get(node, ())
            if index < len(sites):
                stack[-1] = (node, index + 1)
                path.append(sites[index])
                stack.append((sites[index].callee, 0))
            else:
                stack.pop()
                if stack:
                    path.pop()
        return results

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------

    def to_dot(self) -> str:
        """Graphviz DOT rendering, handy for debugging workloads."""
        lines = ["digraph callgraph {"]
        for fn in self._functions.values():
            shape = "doubleoctagon" if fn.is_allocation_api else "box"
            lines.append(f'  "{fn.name}" [shape={shape}];')
        for site in self._sites:
            label = site.label or str(site.site_id)
            lines.append(
                f'  "{site.caller}" -> "{site.callee}" [label="{label}"];')
        lines.append("}")
        return "\n".join(lines)

    def __iter__(self) -> Iterator[CallSite]:
        return iter(self._sites)

    def __repr__(self) -> str:  # pragma: no cover - debugging nicety
        return (f"CallGraph(entry={self.entry!r}, "
                f"functions={len(self._functions)}, "
                f"sites={len(self._sites)})")
