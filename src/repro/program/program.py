"""Program abstraction: code plus its static call graph.

A :class:`Program` plays the role of a compiled C program in the paper's
pipeline.  It declares its static call graph once (standing in for the
compiler's call-graph analysis in the LLVM instrumentation pass) and
provides ``main``, a Python method tree that executes against a
:class:`~repro.program.process.Process`.

The contract that makes the reproduction faithful: **every** dynamic call
in ``main`` goes through ``process.call`` naming a declared call site, and
every allocation goes through the process heap API naming its declared
allocation site.  The test suite checks graph/behaviour agreement for all
bundled workloads.
"""

from __future__ import annotations

import abc
from typing import Any, Optional

from .callgraph import CallGraph
from .process import Process


class Program(abc.ABC):
    """A guest program: static call graph + executable behaviour."""

    #: Human-readable program name (used in reports and benchmarks).
    name: str = "program"

    def __init__(self) -> None:
        self._graph: Optional[CallGraph] = None

    @abc.abstractmethod
    def build_graph(self) -> CallGraph:
        """Construct the static call graph (functions and call sites)."""

    @property
    def graph(self) -> CallGraph:
        """The static call graph, built once, cached, and frozen.

        Freezing closes a long-standing trap: the instrumentation plan,
        codec, and patch CCIDs all key off this graph's site-id
        numbering, but the cached instance used to stay mutable — an
        ``add_call_site`` after instrumentation would silently
        desynchronize every deployed CCID.  Mutation now raises
        :class:`~repro.program.callgraph.CallGraphError`; use
        :meth:`build_graph` for a fresh mutable copy.
        """
        if self._graph is None:
            self._graph = self.build_graph().freeze()
        return self._graph

    @abc.abstractmethod
    def main(self, p: Process, *args: Any, **kwargs: Any) -> Any:
        """The program body, executed as the graph's entry function."""
