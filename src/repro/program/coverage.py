"""Call-graph coverage: do the declared graph and the behaviour agree?

The reproduction's fidelity contract (see :mod:`repro.program.program`)
is that a program's declared static call graph is a *superset* of its
dynamic behaviour — the undeclared direction is enforced at run time by
``Process.call``.  This module measures the other direction: which
declared call sites an input set actually exercises.  It serves two
masters:

* **workload QA** — a site no input ever crosses is either dead
  declaration or a missing test input (the bundled-workload test uses
  this);
* **the paper's instrumentation story** — coverage over the
  *instrumented* subset shows how much of the encoding machinery a
  given workload actually pays for.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional

from .callgraph import CallGraph, CallSite
from .context import ContextSource


class CoverageTracker(ContextSource):
    """A context source that records every call site crossed.

    Stack it in front of another context source (usually the encoding
    runtime) when both coverage and CCIDs are needed.
    """

    def __init__(self, inner: Optional[ContextSource] = None) -> None:
        self.inner = inner
        self.executed: Dict[int, int] = {}

    def enter_function(self, name: str) -> None:
        if self.inner is not None:
            self.inner.enter_function(name)

    def exit_function(self, name: str) -> None:
        if self.inner is not None:
            self.inner.exit_function(name)

    def at_call_site(self, site: CallSite) -> None:
        self.executed[site.site_id] = self.executed.get(site.site_id, 0) + 1
        if self.inner is not None:
            self.inner.at_call_site(site)

    def current_ccid(self) -> int:
        if self.inner is not None:
            return self.inner.current_ccid()
        return 0


@dataclass(frozen=True)
class CoverageReport:
    """Executed-vs-declared call sites for one graph."""

    graph: CallGraph
    #: site id -> times crossed (absent = never).
    executed: Dict[int, int]
    #: Restrict reporting to this subset (e.g. an instrumentation plan's
    #: sites); ``None`` means all sites.
    subset: Optional[FrozenSet[int]] = None

    def _universe(self) -> List[CallSite]:
        if self.subset is None:
            return self.graph.sites
        return [self.graph.site_by_id(sid) for sid in sorted(self.subset)]

    @property
    def covered_sites(self) -> List[CallSite]:
        """Sites crossed at least once."""
        return [site for site in self._universe()
                if site.site_id in self.executed]

    @property
    def uncovered_sites(self) -> List[CallSite]:
        """Declared sites no input ever crossed."""
        return [site for site in self._universe()
                if site.site_id not in self.executed]

    @property
    def coverage(self) -> float:
        """Covered fraction of the (possibly subset) universe."""
        universe = self._universe()
        if not universe:
            return 1.0
        return len(self.covered_sites) / len(universe)

    def crossings(self, site: CallSite) -> int:
        """How many times ``site`` executed."""
        return self.executed.get(site.site_id, 0)

    def render(self) -> str:
        """Human-readable coverage summary with the gaps listed."""
        lines = [f"call-site coverage: {len(self.covered_sites)}/"
                 f"{len(self._universe())} ({self.coverage:.0%})"]
        for site in self.uncovered_sites:
            label = f"#{site.label}" if site.label else ""
            lines.append(f"  never executed: {site.caller}->"
                         f"{site.callee}{label}")
        return "\n".join(lines)


def merge_coverage(graph: CallGraph,
                   trackers: List[CoverageTracker],
                   subset: Optional[FrozenSet[int]] = None
                   ) -> CoverageReport:
    """Combine several runs' trackers into one report."""
    executed: Dict[int, int] = {}
    for tracker in trackers:
        for site_id, count in tracker.executed.items():
            executed[site_id] = executed.get(site_id, 0) + count
    return CoverageReport(graph, executed, subset)
