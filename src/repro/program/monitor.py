"""Execution monitors: how a running process touches memory and the heap.

A :class:`Process` never accesses guest memory or the heap directly — it
routes every operation through an :class:`ExecutionMonitor`.  This mirrors
the three deployment modes of HeapTherapy+:

* **native / defended** — :class:`DirectMonitor`: operations hit the
  virtual memory and the allocator directly.  If the allocator is the
  defense interposer, guard-page faults arise naturally from page
  protections; nothing else changes, which is the paper's point about
  lightweight online defense.
* **offline analysis** — :class:`repro.shadow.analyzer.ShadowAnalyzer`
  implements the same interface but interposes shadow-memory bookkeeping,
  red zones and deferred free, playing the role of Valgrind.

The monitor is bound to its process after construction (:meth:`bind`), so
the shadow analyzer can ask the process for the current calling context.
"""

from __future__ import annotations

import abc
from typing import TYPE_CHECKING, Optional

from ..allocator.base import Allocator
from ..machine.memory import VirtualMemory
from .cost import CycleMeter
from .values import TaggedValue

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .process import Process


class ExecutionMonitor(abc.ABC):
    """Every memory/heap operation a guest program can perform."""

    process: Optional["Process"] = None

    def bind(self, process: "Process") -> None:
        """Attach the process; called once by ``Process.__init__``."""
        self.process = process

    # -- heap ----------------------------------------------------------

    @abc.abstractmethod
    def heap_alloc(self, fun: str, *args: int) -> int:
        """Dispatch an allocation call (``fun`` names the entry point)."""

    @abc.abstractmethod
    def heap_free(self, address: int) -> None:
        """Dispatch a ``free`` call."""

    # -- computation -----------------------------------------------------

    @abc.abstractmethod
    def compute(self, cycles: int) -> None:
        """The guest performs ``cycles`` of pure computation.

        Monitors that interpret the guest (the shadow analyzer) tax this
        — Valgrind-style DBI slows *all* code down, not just memory
        operations.
        """

    # -- memory --------------------------------------------------------

    @abc.abstractmethod
    def read(self, address: int, size: int) -> TaggedValue:
        """Load ``size`` bytes into a register value."""

    @abc.abstractmethod
    def write(self, address: int, value: TaggedValue) -> None:
        """Store a register value (data + shadow state) to memory."""

    @abc.abstractmethod
    def copy(self, dst: int, src: int, size: int) -> None:
        """``memcpy`` — copies data and, under analysis, shadow state."""

    @abc.abstractmethod
    def fill(self, address: int, size: int, byte: int) -> None:
        """``memset`` — fills with an immediate (hence valid) byte."""

    # -- value uses (the only points where validity is checked) --------

    @abc.abstractmethod
    def use(self, value: TaggedValue, kind: str) -> None:
        """A value decides control flow / an address / enters the kernel."""

    @abc.abstractmethod
    def syscall_out(self, address: int, size: int) -> bytes:
        """Buffer leaves the process (e.g. ``send``); returns the bytes."""

    @abc.abstractmethod
    def syscall_in(self, address: int, data: bytes) -> None:
        """Buffer is filled from outside (e.g. ``recv``)."""


class DirectMonitor(ExecutionMonitor):
    """Pass-through monitor for native and defended execution.

    Charges only the program's own baseline costs; any defense costs are
    charged by the :class:`~repro.defense.interpose.DefendedAllocator`
    itself, keeping Figure 8's decomposition clean.
    """

    def __init__(self, memory: VirtualMemory, heap: Allocator,
                 meter: CycleMeter) -> None:
        self.memory = memory
        self.heap = heap
        self.meter = meter
        # Hot-path bindings (the model is a frozen dataclass, the meter
        # is shared for the process lifetime): one attribute walk at
        # construction instead of several per guest memory operation.
        self._charge = meter.charge
        self._heap_op = meter.model.heap_op
        self._mem_cost = meter.model.mem_cost
        self._mem_read = memory.read
        self._mem_write = memory.write
        #: fun name -> bound allocator method (avoids getattr per call).
        self._heap_methods: dict = {}

    def heap_alloc(self, fun: str, *args: int) -> int:
        self._charge("base", self._heap_op)
        method = self._heap_methods.get(fun)
        if method is None:
            method = getattr(self.heap, fun)
            self._heap_methods[fun] = method
        return method(*args)

    def heap_free(self, address: int) -> None:
        self._charge("base", self._heap_op)
        self.heap.free(address)

    def compute(self, cycles: int) -> None:
        self._charge("base", cycles)

    def read(self, address: int, size: int) -> TaggedValue:
        self._charge("base", self._mem_cost(size))
        return TaggedValue(self._mem_read(address, size))

    def write(self, address: int, value: TaggedValue) -> None:
        self._charge("base", self._mem_cost(len(value)))
        self._mem_write(address, value.data)

    def copy(self, dst: int, src: int, size: int) -> None:
        self._charge("base", self._mem_cost(size) * 2)
        self._mem_write(dst, self._mem_read(src, size))

    def fill(self, address: int, size: int, byte: int) -> None:
        self._charge("base", self._mem_cost(size))
        self.memory.fill(address, size, byte)

    def use(self, value: TaggedValue, kind: str) -> None:
        self._charge("base", 1)

    def syscall_out(self, address: int, size: int) -> bytes:
        self._charge("base", self._mem_cost(size))
        return self._mem_read(address, size)

    def syscall_in(self, address: int, data: bytes) -> None:
        self._charge("base", self._mem_cost(len(data)))
        self._mem_write(address, data)
