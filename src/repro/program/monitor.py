"""Execution monitors: how a running process touches memory and the heap.

A :class:`Process` never accesses guest memory or the heap directly — it
routes every operation through an :class:`ExecutionMonitor`.  This mirrors
the three deployment modes of HeapTherapy+:

* **native / defended** — :class:`DirectMonitor`: operations hit the
  virtual memory and the allocator directly.  If the allocator is the
  defense interposer, guard-page faults arise naturally from page
  protections; nothing else changes, which is the paper's point about
  lightweight online defense.
* **offline analysis** — :class:`repro.shadow.analyzer.ShadowAnalyzer`
  implements the same interface but interposes shadow-memory bookkeeping,
  red zones and deferred free, playing the role of Valgrind.

The monitor is bound to its process after construction (:meth:`bind`), so
the shadow analyzer can ask the process for the current calling context.
"""

from __future__ import annotations

import abc
from typing import TYPE_CHECKING, Any, List, Optional, Sequence

from ..allocator.base import Allocator
from ..machine.errors import SegmentationFault
from ..machine.memory import VirtualMemory
from .blocks import (
    OP_COMPUTE,
    OP_COPY,
    OP_FILL,
    OP_READ,
    OP_READ_W,
    OP_SENDFILE,
    OP_SYSCALL_IN,
    OP_SYSCALL_OUT,
    OP_USE,
    OP_USE_W,
    OP_WRITE_ARG_W,
    OP_WRITE_IMM,
    OP_WRITE_IMM_PAIR,
    OP_WRITE_IMM_W,
    OP_WRITE_REG,
    OP_WRITE_REG_W,
    BasicBlock,
)
from .cost import CycleMeter
from .values import TaggedValue

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .process import Process


class ExecutionMonitor(abc.ABC):
    """Every memory/heap operation a guest program can perform."""

    process: Optional["Process"] = None

    def bind(self, process: "Process") -> None:
        """Attach the process; called once by ``Process.__init__``."""
        self.process = process

    # -- heap ----------------------------------------------------------

    @abc.abstractmethod
    def heap_alloc(self, fun: str, *args: int) -> int:
        """Dispatch an allocation call (``fun`` names the entry point)."""

    @abc.abstractmethod
    def heap_free(self, address: int) -> None:
        """Dispatch a ``free`` call."""

    def heap_alloc_run(self, fun: str, sizes: Sequence[int]) -> List[int]:
        """Dispatch a same-call-site run of single-size allocation calls.

        The generic implementation replays the run through
        :meth:`heap_alloc`, so interpreting monitors (the shadow
        analyzer) observe exactly the per-call stream.
        :class:`DirectMonitor` overrides it with a fused loop.
        """
        alloc = self.heap_alloc
        return [alloc(fun, size) for size in sizes]

    def heap_free_run(self, addresses: Sequence[int]) -> None:
        """Dispatch a run of ``free`` calls (see :meth:`heap_alloc_run`)."""
        free = self.heap_free
        for address in addresses:
            free(address)

    # -- computation -----------------------------------------------------

    @abc.abstractmethod
    def compute(self, cycles: int) -> None:
        """The guest performs ``cycles`` of pure computation.

        Monitors that interpret the guest (the shadow analyzer) tax this
        — Valgrind-style DBI slows *all* code down, not just memory
        operations.
        """

    # -- memory --------------------------------------------------------

    @abc.abstractmethod
    def read(self, address: int, size: int) -> TaggedValue:
        """Load ``size`` bytes into a register value."""

    @abc.abstractmethod
    def write(self, address: int, value: TaggedValue) -> None:
        """Store a register value (data + shadow state) to memory."""

    @abc.abstractmethod
    def copy(self, dst: int, src: int, size: int) -> None:
        """``memcpy`` — copies data and, under analysis, shadow state."""

    @abc.abstractmethod
    def fill(self, address: int, size: int, byte: int) -> None:
        """``memset`` — fills with an immediate (hence valid) byte."""

    # -- value uses (the only points where validity is checked) --------

    @abc.abstractmethod
    def use(self, value: TaggedValue, kind: str) -> None:
        """A value decides control flow / an address / enters the kernel."""

    @abc.abstractmethod
    def syscall_out(self, address: int, size: int) -> bytes:
        """Buffer leaves the process (e.g. ``send``); returns the bytes."""

    @abc.abstractmethod
    def syscall_in(self, address: int, data: bytes) -> None:
        """Buffer is filled from outside (e.g. ``recv``)."""

    def sendfile(self, address: int, size: int) -> int:
        """Buffer leaves the process zero-copy (``sendfile``).

        The generic implementation routes through :meth:`syscall_out`,
        so interpreting monitors (the shadow analyzer) observe the full
        read of the range exactly as a copying send; only
        :class:`DirectMonitor` skips the data copy.
        """
        return len(self.syscall_out(address, size))

    # -- batched execution ---------------------------------------------

    def exec_block(self, block: BasicBlock,
                   args: Sequence[int]) -> List[Any]:
        """Execute a pre-decoded straight-line block.

        The generic implementation replays the block through the per-op
        monitor methods above, so any monitor (the shadow analyzer
        included) observes exactly the stream the per-instruction path
        would have produced.  :class:`DirectMonitor` overrides this with
        a fused loop.  Returns the block outputs (one per USE /
        SYSCALL_OUT op, in op order).
        """
        regs: List[Any] = [None] * block.nslots
        out: List[Any] = []
        for op in block.ops:
            code = op[0]
            if code == OP_READ_W:
                regs[op[3]] = self.read(args[op[1]] + op[2], 8)
            elif code == OP_USE_W or code == OP_USE:
                value = regs[op[1]]
                self.use(value, op[2])
                out.append(value.to_int())
            elif code == OP_WRITE_ARG_W:
                self.write(args[op[1]] + op[2],
                           TaggedValue.of_int(args[op[3]], 8))
            elif (code == OP_WRITE_IMM or code == OP_WRITE_IMM_W
                  or code == OP_WRITE_IMM_PAIR):
                self.write(args[op[1]] + op[2], op[3])
            elif code == OP_COMPUTE:
                self.compute(op[1])
            elif code == OP_FILL:
                self.fill(args[op[1]] + op[2], op[3], op[4])
            elif code == OP_READ:
                regs[op[4]] = self.read(args[op[1]] + op[2], op[3])
            elif code == OP_WRITE_REG_W or code == OP_WRITE_REG:
                self.write(args[op[1]] + op[2], regs[op[3]])
            elif code == OP_COPY:
                self.copy(args[op[1]] + op[2], args[op[3]] + op[4], op[5])
            elif code == OP_SYSCALL_OUT:
                out.append(self.syscall_out(args[op[1]] + op[2], op[3]))
            elif code == OP_SENDFILE:
                out.append(self.sendfile(args[op[1]] + op[2], op[3]))
            else:  # OP_SYSCALL_IN
                self.syscall_in(args[op[1]] + op[2], op[3])
        return out

    def exec_block_run(self, block: BasicBlock,
                       rows: Sequence[Sequence[int]]) -> List[List[Any]]:
        """Execute one block over many argument rows (a request batch).

        Returns one output list per row, in row order.  The generic
        implementation is the row loop itself; :class:`DirectMonitor`
        fuses the per-row dispatch.
        """
        exec_block = self.exec_block
        return [exec_block(block, row) for row in rows]


class DirectMonitor(ExecutionMonitor):
    """Pass-through monitor for native and defended execution.

    Charges only the program's own baseline costs; any defense costs are
    charged by the :class:`~repro.defense.interpose.DefendedAllocator`
    itself, keeping Figure 8's decomposition clean.
    """

    def __init__(self, memory: VirtualMemory, heap: Allocator,
                 meter: CycleMeter) -> None:
        self.memory = memory
        self.heap = heap
        self.meter = meter
        # Hot-path bindings (the model is a frozen dataclass, the meter
        # is shared for the process lifetime): one attribute walk at
        # construction instead of several per guest memory operation.
        self._charge = meter.charge
        self._heap_op = meter.model.heap_op
        self._mem_cost = meter.model.mem_cost
        self._mem_read = memory.read
        self._mem_write = memory.write
        #: fun name -> bound allocator method (avoids getattr per call).
        self._heap_methods: dict = {}

    def heap_alloc(self, fun: str, *args: int) -> int:
        self._charge("base", self._heap_op)
        method = self._heap_methods.get(fun)
        if method is None:
            method = getattr(self.heap, fun)
            self._heap_methods[fun] = method
        return method(*args)

    def heap_free(self, address: int) -> None:
        self._charge("base", self._heap_op)
        self.heap.free(address)

    def heap_alloc_run(self, fun: str, sizes: Sequence[int]) -> List[int]:
        if not sizes:
            return []
        self._charge("base", self._heap_op * len(sizes))
        if fun == "malloc":
            return self.heap.malloc_run(sizes)
        method = self._heap_methods.get(fun)
        if method is None:
            method = getattr(self.heap, fun)
            self._heap_methods[fun] = method
        return [method(size) for size in sizes]

    def heap_free_run(self, addresses: Sequence[int]) -> None:
        if not addresses:
            return
        self._charge("base", self._heap_op * len(addresses))
        self.heap.free_run(addresses)

    def compute(self, cycles: int) -> None:
        self._charge("base", cycles)

    def read(self, address: int, size: int) -> TaggedValue:
        self._charge("base", self._mem_cost(size))
        return TaggedValue(self._mem_read(address, size))

    def write(self, address: int, value: TaggedValue) -> None:
        self._charge("base", self._mem_cost(len(value)))
        self._mem_write(address, value.data)

    def copy(self, dst: int, src: int, size: int) -> None:
        self._charge("base", self._mem_cost(size) * 2)
        self._mem_write(dst, self._mem_read(src, size))

    def fill(self, address: int, size: int, byte: int) -> None:
        self._charge("base", self._mem_cost(size))
        self.memory.fill(address, size, byte)

    def use(self, value: TaggedValue, kind: str) -> None:
        self._charge("base", 1)

    def syscall_out(self, address: int, size: int) -> bytes:
        self._charge("base", self._mem_cost(size))
        return self._mem_read(address, size)

    def syscall_in(self, address: int, data: bytes) -> None:
        self._charge("base", self._mem_cost(len(data)))
        self._mem_write(address, data)

    def sendfile(self, address: int, size: int) -> int:
        self._charge("base", self._mem_cost(size))
        self.memory.check_read(address, size)
        return size

    def exec_block(self, block: BasicBlock,
                   args: Sequence[int]) -> List[Any]:
        """Fused block execution: one cycle charge, direct memory ops.

        Observation-identical to the generic per-op replay: same memory
        effects (word stores fall back to byte stores exactly where the
        per-op path would), same outputs, same cycles per category.  On a
        fault the up-front batched charge is adjusted down to what the
        per-op path would have charged by the time op ``i`` faulted.
        """
        if block.model is not self.meter.model:
            # The block's pre-computed charges belong to another cost
            # model; replay per-op so the right model is consulted.
            return ExecutionMonitor.exec_block(self, block, args)
        self._charge("base", block.base_cycles)
        memory = self.memory
        read_word = memory.read_word
        write_word = memory.write_word
        regs: List[Any] = [0] * block.nslots
        out: List[Any] = []
        index = 0
        try:
            # COMPUTE ops are pre-filtered out of run_ops (their cycles
            # are in the up-front charge); the chain is ordered by op
            # frequency in the serving workloads.
            for index, op in block.run_ops:
                code = op[0]
                if code == OP_COPY:
                    memory.write(args[op[1]] + op[2],
                                 memory.read(args[op[3]] + op[4], op[5]))
                elif code == OP_SENDFILE:
                    memory.check_read(args[op[1]] + op[2], op[3])
                    out.append(op[3])
                elif code == OP_FILL:
                    memory.fill(args[op[1]] + op[2], op[3], op[4])
                elif code == OP_SYSCALL_OUT:
                    out.append(memory.read(args[op[1]] + op[2], op[3]))
                elif code == OP_READ:
                    regs[op[4]] = memory.read(args[op[1]] + op[2], op[3])
                elif code == OP_WRITE_IMM:
                    memory.write(args[op[1]] + op[2], op[4])
                elif code == OP_READ_W:
                    regs[op[3]] = read_word(args[op[1]] + op[2])
                elif code == OP_USE_W:
                    out.append(regs[op[1]])
                elif code == OP_WRITE_ARG_W:
                    write_word(args[op[1]] + op[2], args[op[3]])
                elif code == OP_WRITE_IMM_W:
                    write_word(args[op[1]] + op[2], op[4])
                elif code == OP_WRITE_IMM_PAIR:
                    memory.write_word_pair(args[op[1]] + op[2], op[4],
                                           op[5])
                elif code == OP_WRITE_REG_W:
                    write_word(args[op[1]] + op[2], regs[op[3]])
                elif code == OP_WRITE_REG:
                    memory.write(args[op[1]] + op[2], regs[op[3]])
                elif code == OP_USE:
                    out.append(int.from_bytes(regs[op[1]], "little"))
                else:  # OP_SYSCALL_IN
                    memory.write(args[op[1]] + op[2], op[3])
        except SegmentationFault:
            # Per-op dispatch charges before each access: by the time op
            # ``index`` faulted it had charged cum_cycles[index].
            self._charge("base",
                         block.cum_cycles[index] - block.base_cycles)
            raise
        return out

    def exec_block_run(self, block: BasicBlock,
                       rows: Sequence[Sequence[int]]) -> List[List[Any]]:
        """Fused batch execution: one charge for the whole row run.

        Observation-identical to ``exec_block`` per row: the ``n``
        per-row charges collapse into one ``n``-scaled charge, and on a
        fault in row ``r`` the up-front charge is adjusted to what the
        per-row path would have accumulated (``r`` full blocks plus the
        faulting row's per-op prefix).
        """
        n = len(rows)
        if n == 0:
            return []
        if block.model is not self.meter.model:
            exec_block = ExecutionMonitor.exec_block
            return [exec_block(self, block, row) for row in rows]
        base_cycles = block.base_cycles
        self._charge("base", base_cycles * n)
        memory = self.memory
        run_ops = block.run_ops
        nslots = block.nslots
        results: List[List[Any]] = []
        completed = 0
        index = 0
        try:
            for row in rows:
                regs: List[Any] = [0] * nslots
                out: List[Any] = []
                # Same pre-filtered, frequency-ordered chain as
                # ``exec_block`` above.
                for index, op in run_ops:
                    code = op[0]
                    if code == OP_COPY:
                        memory.write(row[op[1]] + op[2],
                                     memory.read(row[op[3]] + op[4],
                                                 op[5]))
                    elif code == OP_SENDFILE:
                        memory.check_read(row[op[1]] + op[2], op[3])
                        out.append(op[3])
                    elif code == OP_FILL:
                        memory.fill(row[op[1]] + op[2], op[3], op[4])
                    elif code == OP_SYSCALL_OUT:
                        out.append(memory.read(row[op[1]] + op[2],
                                               op[3]))
                    elif code == OP_READ:
                        regs[op[4]] = memory.read(row[op[1]] + op[2],
                                                  op[3])
                    elif code == OP_WRITE_IMM:
                        memory.write(row[op[1]] + op[2], op[4])
                    elif code == OP_READ_W:
                        regs[op[3]] = memory.read_word(row[op[1]] + op[2])
                    elif code == OP_USE_W:
                        out.append(regs[op[1]])
                    elif code == OP_WRITE_ARG_W:
                        memory.write_word(row[op[1]] + op[2], row[op[3]])
                    elif code == OP_WRITE_IMM_W:
                        memory.write_word(row[op[1]] + op[2], op[4])
                    elif code == OP_WRITE_IMM_PAIR:
                        memory.write_word_pair(row[op[1]] + op[2], op[4],
                                               op[5])
                    elif code == OP_WRITE_REG_W:
                        memory.write_word(row[op[1]] + op[2],
                                          regs[op[3]])
                    elif code == OP_WRITE_REG:
                        memory.write(row[op[1]] + op[2], regs[op[3]])
                    elif code == OP_USE:
                        out.append(int.from_bytes(regs[op[1]], "little"))
                    else:  # OP_SYSCALL_IN
                        memory.write(row[op[1]] + op[2], op[3])
                results.append(out)
                completed += 1
        except SegmentationFault:
            # completed rows charged in full; the faulting row charged
            # its per-op prefix; the remaining rows charged nothing.
            self._charge("base", block.cum_cycles[index]
                         - base_cycles * (n - completed))
            raise
        return results

