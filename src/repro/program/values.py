"""Tagged guest values.

A :class:`TaggedValue` is the simulation's analogue of data sitting in a
CPU register after a load.  Under native or defended execution it is just
bytes; under the offline shadow analysis it additionally carries Memcheck
style *validity masks* (one mask byte per data byte, each bit mirroring the
V-bit of the corresponding data bit) and the *origin* of its invalid bits —
the serial number of the heap buffer whose uninitialized memory they came
from.

The distinction at the heart of Memcheck's false-positive avoidance
(Figure 4 of the paper) lives here: merely *copying* a value never checks
validity; only the explicit use points (:meth:`Process.branch_on`,
:meth:`Process.use_as_address`, :meth:`Process.syscall_out`) do.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional


@dataclass(frozen=True)
class TaggedValue:
    """Bytes plus optional per-bit validity and origin information.

    Attributes:
        data: the value's bytes (little-endian when used as an integer).
        valid_mask: one mask byte per data byte, bit ``i`` set iff bit ``i``
            of that data byte is initialized.  ``None`` means "all valid"
            (native execution does not track validity).
        origin: serial number of the heap buffer the first invalid bit
            originated from, when known.
    """

    data: bytes
    valid_mask: Optional[bytes] = None
    origin: Optional[int] = None

    def __post_init__(self) -> None:
        if self.valid_mask is not None and len(self.valid_mask) != len(self.data):
            raise ValueError("valid_mask length must match data length")

    def __len__(self) -> int:
        return len(self.data)

    @property
    def fully_valid(self) -> bool:
        """True when every bit is initialized."""
        if self.valid_mask is None:
            return True
        return all(m == 0xFF for m in self.valid_mask)

    @property
    def first_invalid_byte(self) -> Optional[int]:
        """Index of the first byte with any invalid bit, or ``None``."""
        if self.valid_mask is None:
            return None
        for index, mask in enumerate(self.valid_mask):
            if mask != 0xFF:
                return index
        return None

    def to_int(self) -> int:
        """Interpret the bytes as a little-endian unsigned integer."""
        return int.from_bytes(self.data, "little")

    def slice(self, start: int, length: int) -> "TaggedValue":
        """A sub-range of this value, masks and origin preserved."""
        mask = None
        if self.valid_mask is not None:
            mask = self.valid_mask[start:start + length]
        return TaggedValue(self.data[start:start + length], mask, self.origin)

    @staticmethod
    def of_int(value: int, size: int = 8) -> "TaggedValue":
        """A fully-valid immediate integer value."""
        return TaggedValue((value & ((1 << (8 * size)) - 1)).to_bytes(size, "little"))

    @staticmethod
    def of_bytes(data: bytes) -> "TaggedValue":
        """A fully-valid immediate byte string."""
        return TaggedValue(bytes(data))
