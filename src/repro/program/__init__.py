"""Program model: call graphs, guest processes, execution monitors, costs.

This package stands in for "a compiled C program" in the paper's pipeline:
programs declare a static call graph (what the LLVM pass would analyze) and
execute through a :class:`Process` that tracks dynamic calling contexts and
routes all memory traffic through a pluggable monitor.
"""

from .callgraph import CallGraph, CallGraphError, CallSite, Function
from .context import ContextSource, NullContextSource
from .coverage import CoverageReport, CoverageTracker, merge_coverage
from .cost import DEFAULT_COST_MODEL, CostModel, CycleMeter
from .monitor import DirectMonitor, ExecutionMonitor
from .process import AllocationEvent, Frame, Process, ProcessError
from .program import Program
from .threads import (
    GuestThreadResult,
    LockStepScheduler,
    ThreadedExecution,
)
from .values import TaggedValue

__all__ = [
    "AllocationEvent",
    "CallGraph",
    "CallGraphError",
    "CallSite",
    "ContextSource",
    "CoverageReport",
    "CoverageTracker",
    "CostModel",
    "CycleMeter",
    "DEFAULT_COST_MODEL",
    "DirectMonitor",
    "ExecutionMonitor",
    "Frame",
    "Function",
    "GuestThreadResult",
    "LockStepScheduler",
    "NullContextSource",
    "Process",
    "ProcessError",
    "Program",
    "TaggedValue",
    "ThreadedExecution",
    "merge_coverage",
]
