"""The guest process: executes a program against the simulated machine.

``Process`` is the reproduction's stand-in for a compiled C process.  A
:class:`~repro.program.program.Program` provides the code (Python methods
standing in for C functions) and the static call graph; the process
provides the execution context:

* a dynamic call stack (so true calling contexts are known at any moment),
* dispatch of every heap and memory operation through an
  :class:`~repro.program.monitor.ExecutionMonitor`,
* hooks into a :class:`~repro.program.context.ContextSource` — the calling
  context encoding runtime — exactly where instrumented code would run:
  function prologues and call sites,
* cycle accounting for the deterministic performance model, and
* an allocation profile (CCID → frequency) used by the Figure 8
  methodology of picking median-frequency CCIDs as hypothesized
  vulnerable ones.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from ..allocator.base import Allocator
from .blocks import BasicBlock
from .callgraph import CallGraph, CallSite
from .context import ContextSource, NullContextSource
from .cost import CycleMeter
from .monitor import DirectMonitor, ExecutionMonitor
from .values import TaggedValue


class Frame:
    """One dynamic activation record.

    A plain ``__slots__`` class rather than a dataclass: frames are
    created and destroyed on every guest call, making this one of the
    hottest object types in the simulator.
    """

    __slots__ = ("function", "site")

    def __init__(self, function: str, site: Optional[CallSite]) -> None:
        self.function = function
        #: The site through which this frame was entered (None for entry).
        self.site = site

    def __repr__(self) -> str:  # pragma: no cover - debugging nicety
        return f"Frame({self.function!r}, {self.site!r})"


@dataclass(frozen=True)
class AllocationEvent:
    """One recorded allocation, for profiling and offline grouping."""

    serial: int
    fun: str
    ccid: int
    address: int
    size: int
    #: True calling context as a tuple of site ids (entry -> alloc site).
    context: Tuple[int, ...]


class ProcessError(RuntimeError):
    """Guest-program structural error (bad call protocol, etc.)."""


class Process:
    """Executes a program's functions with full context tracking.

    Args:
        graph: the program's static call graph.
        monitor: memory/heap dispatch; defaults to a
            :class:`DirectMonitor` over ``heap``.
        heap: allocator used when no explicit monitor is given.
        context_source: the encoding runtime (or stack walker); defaults
            to no tracking.
        meter: cycle meter; a fresh one is created when omitted.
        record_allocations: keep an :class:`AllocationEvent` log (the
            offline analyzer and profiling runs need it; defaults on —
            disable for the longest benchmark loops).
        capture_context: record the true calling context tuple on each
            :class:`AllocationEvent`.  ``True``/``False`` switch the
            whole process; a *collection of site ids* captures tuples
            only for allocations flowing through those call sites (the
            per-site opt-out the fused fast paths lean on).  Defaults to
            ``record_allocations`` — when the event log is off the
            tuples would be dropped anyway, so benchmark loops skip
            building them.
        track_live: maintain the :attr:`live_allocations` address map
            (defaults on).  Serving sessions turn it off — they never
            inspect live buffers, and the per-allocation event object it
            forces is the last per-request cost batching cannot remove.
    """

    def __init__(self, graph: CallGraph,
                 monitor: Optional[ExecutionMonitor] = None,
                 heap: Optional[Allocator] = None,
                 context_source: Optional[ContextSource] = None,
                 meter: Optional[CycleMeter] = None,
                 record_allocations: bool = True,
                 capture_context: Optional[bool] = None,
                 track_live: bool = True) -> None:
        self.graph = graph
        self.meter = meter if meter is not None else CycleMeter()
        if monitor is None:
            if heap is None:
                raise ProcessError("Process needs a monitor or a heap")
            monitor = DirectMonitor(heap.memory, heap, self.meter)
        self.monitor = monitor
        self.monitor.bind(self)
        self.context_source: ContextSource = (
            context_source if context_source is not None
            else NullContextSource())
        self.record_allocations = record_allocations
        self.capture_context = (record_allocations if capture_context is None
                                else capture_context)
        self.track_live = track_live

        # Hot-path bindings: the call/alloc protocol runs these on every
        # guest call; binding them once removes repeated attribute walks.
        source = self.context_source
        self._at_call_site = source.at_call_site
        self._enter_function = source.enter_function
        self._exit_function = source.exit_function
        self._current_ccid = source.current_ccid
        #: A *null* source's hooks are all no-ops and its CCID is the
        #: constant 0, so the call/alloc protocol may skip invoking them
        #: — observationally identical, measurably faster.
        self._null_context = type(source) is NullContextSource
        self._charge = self.meter.charge
        self._call_cost = self.meter.model.call
        #: (caller, callee, label) -> resolved CallSite; populated only
        #: while the graph is frozen (site ids are stable then).
        self._site_cache: Dict[Tuple[str, str, str], CallSite] = {}

        self._stack: List[Frame] = []
        #: The call site of the allocation currently being dispatched;
        #: monitors (the shadow analyzer) read it to reconstruct the true
        #: allocation context.
        self.last_alloc_site: Optional[CallSite] = None
        #: Lock-step scheduler hooks for multi-threaded guest execution
        #: (see :mod:`repro.program.threads`); unset for single-threaded
        #: runs.
        self.scheduler: Optional[Any] = None
        self.scheduler_thread_id: Optional[int] = None
        self._alloc_serial = 0
        self.allocations: List[AllocationEvent] = []
        #: (fun, ccid) -> number of allocations observed.
        self.alloc_profile: Counter = Counter()
        #: address -> most recent AllocationEvent for that address.
        self.live_allocations: Dict[int, AllocationEvent] = {}

    # ------------------------------------------------------------------
    # Call protocol
    # ------------------------------------------------------------------

    @property
    def current_function(self) -> str:
        """Name of the function currently executing."""
        if not self._stack:
            raise ProcessError("no active frame; use run() or enter()")
        return self._stack[-1].function

    @property
    def depth(self) -> int:
        """Current call-stack depth."""
        return len(self._stack)

    def current_context(self) -> Tuple[int, ...]:
        """The true calling context: site ids from the entry downward."""
        return tuple(frame.site.site_id for frame in self._stack
                     if frame.site is not None)

    def run(self, program: "ProgramLike", *args: Any, **kwargs: Any) -> Any:
        """Execute ``program.main`` as the entry function."""
        if self._stack:
            raise ProcessError("process is already running")
        self._stack.append(Frame(self.graph.entry, None))
        self._enter_function(self.graph.entry)
        try:
            return program.main(self, *args, **kwargs)
        finally:
            self._exit_function(self.graph.entry)
            self._stack.pop()

    def _site(self, caller: str, callee: str, label: str) -> CallSite:
        """Resolve a call site, memoized while the graph is frozen."""
        key = (caller, callee, label)
        call_site = self._site_cache.get(key)
        if call_site is None:
            call_site = self.graph.site(caller, callee, label)
            if self.graph.frozen:
                self._site_cache[key] = call_site
        return call_site

    def call(self, callee: str, fn: Callable[..., Any], *args: Any,
             site: str = "", **kwargs: Any) -> Any:
        """Call ``fn`` as guest function ``callee`` through a call site.

        The site is resolved on the static graph from the current function;
        ``site=`` disambiguates multiple sites to the same callee.  This is
        where instrumented code would execute the encoding update.
        """
        call_site = self._site(self.current_function, callee, site)
        self._charge("base", self._call_cost)
        if self._null_context:
            # Null-source fast path: the three context hooks below are
            # no-ops; skip the calls, keep the frame discipline.
            self._stack.append(Frame(callee, call_site))
            try:
                return fn(self, *args, **kwargs)
            finally:
                self._stack.pop()
        self._at_call_site(call_site)
        self._stack.append(Frame(callee, call_site))
        self._enter_function(callee)
        try:
            return fn(self, *args, **kwargs)
        finally:
            self._exit_function(callee)
            self._stack.pop()

    # ------------------------------------------------------------------
    # Heap API (each allocation flows through its declared call site)
    # ------------------------------------------------------------------

    def _checkpoint(self) -> None:
        """Preemption point for lock-step multi-threaded execution."""
        if self.scheduler is not None:
            self.scheduler.checkpoint(self.scheduler_thread_id)

    def _captures(self, call_site: CallSite) -> bool:
        """Whether this allocation site records its true context tuple."""
        capture = self.capture_context
        if capture is True:
            return True
        if not capture:
            return False
        return call_site.site_id in capture

    def _alloc(self, fun: str, site: str, *args: int) -> int:
        if self.scheduler is not None:
            self.scheduler.checkpoint(self.scheduler_thread_id)
        call_site = self._site(self.current_function, fun, site)
        self.last_alloc_site = call_site
        if self._null_context:
            ccid = 0  # a null source's at_call_site is a no-op, CCID 0
        else:
            self._at_call_site(call_site)
            ccid = self._current_ccid()
        address = self.monitor.heap_alloc(fun, *args)
        size = args[-1] if fun != "calloc" else args[0] * args[1]
        self.alloc_profile[(fun, ccid)] += 1
        serial = self._alloc_serial
        self._alloc_serial = serial + 1
        if self.record_allocations or self.track_live:
            event = AllocationEvent(
                serial=serial,
                fun=fun,
                ccid=ccid,
                address=address,
                size=size,
                context=(self.current_context() + (call_site.site_id,)
                         if self._captures(call_site) else ()),
            )
            if self.record_allocations:
                self.allocations.append(event)
            if self.track_live:
                self.live_allocations[address] = event
        return address

    def malloc(self, size: int, site: str = "") -> int:
        """Guest ``malloc`` through the declared call site."""
        return self._alloc("malloc", site, size)

    def calloc(self, nmemb: int, size: int, site: str = "") -> int:
        """Guest ``calloc``."""
        return self._alloc("calloc", site, nmemb, size)

    def memalign(self, alignment: int, size: int, site: str = "") -> int:
        """Guest ``memalign``."""
        return self._alloc("memalign", site, alignment, size)

    def aligned_alloc(self, alignment: int, size: int,
                      site: str = "") -> int:
        """Guest ISO C11 ``aligned_alloc`` (its own FUN in patches)."""
        return self._alloc("aligned_alloc", site, alignment, size)

    def posix_memalign(self, alignment: int, size: int,
                       site: str = "") -> int:
        """Guest ``posix_memalign`` (its own FUN in patches)."""
        return self._alloc("posix_memalign", site, alignment, size)

    def realloc(self, address: int, size: int, site: str = "") -> int:
        """Guest ``realloc``; retags the buffer's allocation context."""
        self._checkpoint()
        call_site = self._site(self.current_function, "realloc", site)
        self.last_alloc_site = call_site
        if self._null_context:
            ccid = 0
        else:
            self._at_call_site(call_site)
            ccid = self._current_ccid()
        new_address = self.monitor.heap_alloc("realloc", address, size)
        self.alloc_profile[("realloc", ccid)] += 1
        self.live_allocations.pop(address, None)
        if size > 0 and new_address:
            serial = self._alloc_serial
            self._alloc_serial = serial + 1
            if self.record_allocations or self.track_live:
                event = AllocationEvent(
                    serial=serial,
                    fun="realloc",
                    ccid=ccid,
                    address=new_address,
                    size=size,
                    context=(self.current_context() + (call_site.site_id,)
                             if self._captures(call_site) else ()),
                )
                if self.record_allocations:
                    self.allocations.append(event)
                if self.track_live:
                    self.live_allocations[new_address] = event
        return new_address

    def free(self, address: int) -> None:
        """Guest ``free``."""
        self._checkpoint()
        self.monitor.heap_free(address)
        self.live_allocations.pop(address, None)

    # ------------------------------------------------------------------
    # Batched heap API (same-call-site runs)
    # ------------------------------------------------------------------

    def malloc_run(self, sizes: List[int], site: str = "") -> List[int]:
        """Batched guest ``malloc``: many requests through *one* site.

        Context work (site resolution, the encoding update, the CCID
        read) happens once — valid because every allocation of the run
        flows through the same call site, so the per-call path would
        compute the identical CCID each time (``at_call_site`` is
        idempotent at fixed site and depth).  Profile counts, events and
        live tracking match a per-call loop exactly.  Under a lock-step
        scheduler the run is replayed per call so every allocation stays
        a preemption point.
        """
        if not sizes:
            return []
        if self.scheduler is not None:
            return [self.malloc(size, site=site) for size in sizes]
        call_site = self._site(self.current_function, "malloc", site)
        self.last_alloc_site = call_site
        if self._null_context:
            ccid = 0
        else:
            self._at_call_site(call_site)
            ccid = self._current_ccid()
        addresses = self.monitor.heap_alloc_run("malloc", sizes)
        self.alloc_profile[("malloc", ccid)] += len(sizes)
        serial = self._alloc_serial
        self._alloc_serial = serial + len(sizes)
        if self.record_allocations or self.track_live:
            context = (self.current_context() + (call_site.site_id,)
                       if self._captures(call_site) else ())
            for address, size in zip(addresses, sizes):
                event = AllocationEvent(
                    serial=serial, fun="malloc", ccid=ccid,
                    address=address, size=size, context=context)
                serial += 1
                if self.record_allocations:
                    self.allocations.append(event)
                if self.track_live:
                    self.live_allocations[address] = event
        return addresses

    def free_run(self, addresses: List[int]) -> None:
        """Batched guest ``free`` (see :meth:`malloc_run`)."""
        if not addresses:
            return
        if self.scheduler is not None:
            for address in addresses:
                self.free(address)
            return
        self.monitor.heap_free_run(addresses)
        if self.live_allocations:
            pop = self.live_allocations.pop
            for address in addresses:
                pop(address, None)

    # ------------------------------------------------------------------
    # Memory API
    # ------------------------------------------------------------------

    def read(self, address: int, size: int) -> TaggedValue:
        """Load bytes into a register value (no validity check)."""
        self._checkpoint()
        return self.monitor.read(address, size)

    def write(self, address: int, data: Any) -> None:
        """Store bytes or a :class:`TaggedValue` to memory."""
        self._checkpoint()
        if isinstance(data, TaggedValue):
            self.monitor.write(address, data)
        else:
            self.monitor.write(address, TaggedValue.of_bytes(data))

    def write_int(self, address: int, value: int, size: int = 8) -> None:
        """Store an immediate little-endian integer."""
        self.monitor.write(address, TaggedValue.of_int(value, size))

    def read_int(self, address: int, size: int = 8) -> TaggedValue:
        """Load an integer-sized value."""
        return self.monitor.read(address, size)

    def copy(self, dst: int, src: int, size: int) -> None:
        """Guest ``memcpy`` (propagates shadow state, never checks it)."""
        self._checkpoint()
        self.monitor.copy(dst, src, size)

    def fill(self, address: int, size: int, byte: int = 0) -> None:
        """Guest ``memset``."""
        self._checkpoint()
        self.monitor.fill(address, size, byte)

    def compute(self, cycles: int) -> None:
        """Charge ``cycles`` of pure computation to the baseline."""
        self.monitor.compute(cycles)

    def exec_block(self, block: BasicBlock, *args: int) -> Any:
        """Execute a pre-decoded straight-line run in one dispatch.

        Observationally identical to issuing the block's ops through the
        per-op methods above (``tests/program/test_block_equivalence.py``
        holds the batched path to that).  Under a lock-step scheduler the
        block is interpreted per-op so every op stays a preemption
        point; otherwise it goes to the monitor in one call (the
        :class:`~repro.program.monitor.DirectMonitor` fuses it).
        Returns the block outputs: one entry per value-use / syscall-out
        op, in op order.
        """
        if self.scheduler is not None:
            return block.interpret(self, args)
        return self.monitor.exec_block(block, args)

    def exec_block_run(self, block: BasicBlock,
                       rows: Sequence[Sequence[int]]) -> List[Any]:
        """Execute ``block`` once per argument row (a request batch).

        Equivalent to calling :meth:`exec_block` per row; the monitor
        fuses the loop.  Returns the per-row output lists in row order.
        """
        if self.scheduler is not None:
            return [block.interpret(self, row) for row in rows]
        return self.monitor.exec_block_run(block, rows)

    # ------------------------------------------------------------------
    # Value uses — the only validity check points (Fig. 4 discipline)
    # ------------------------------------------------------------------

    def branch_on(self, value: TaggedValue) -> int:
        """Use a value to decide control flow; returns it as an int."""
        self.monitor.use(value, "branch")
        return value.to_int()

    def use_as_address(self, value: TaggedValue) -> int:
        """Use a value as a memory address; returns it as an int."""
        self.monitor.use(value, "address")
        return value.to_int()

    def syscall_out(self, address: int, size: int) -> bytes:
        """Send a buffer to the outside world (kernel-visible use)."""
        self._checkpoint()
        return self.monitor.syscall_out(address, size)

    def syscall_in(self, address: int, data: bytes) -> None:
        """Receive external data into a buffer (initializes it)."""
        self._checkpoint()
        self.monitor.syscall_in(address, data)

    def sendfile(self, address: int, size: int) -> int:
        """Send a buffer zero-copy (``sendfile``): same access check and
        cycle charge as :meth:`syscall_out`, returns the byte count."""
        self._checkpoint()
        return self.monitor.sendfile(address, size)


class ProgramLike:
    """Structural typing helper for things with a ``main(process, ...)``."""

    def main(self, process: Process, *args: Any, **kwargs: Any) -> Any:
        """The program body; see :class:`repro.program.program.Program`."""
        raise NotImplementedError
