"""Deterministic cycle cost model.

The paper's efficiency numbers (the encoding comparison in §VIII-B1 and the
overhead decomposition in Figure 8) are wall-clock measurements on the
authors' testbed.  A reproduction on a simulator cannot — and per the
paper's framing need not — match absolute percentages; what must hold is
the *shape*: which configuration is cheaper, by roughly what factor, and
how overhead decomposes into interposition / metadata / patch enforcement.

To make those shapes deterministic and host-independent, every simulated
operation charges *cycles* to a :class:`CycleMeter`.  The constants below
are calibrated against published micro-architectural ballpark figures (a
call is a few cycles, a PCC encoding update is two or three arithmetic
instructions, an ``mprotect`` system call is thousands of cycles) so the
relative magnitudes are realistic rather than tuned to reproduce the
paper's exact percentages.

Cost categories mirror Figure 8's decomposition so the benchmark can report
the same stacked breakdown:

* ``base``      — the program's own work (compute, memory traffic, calls).
* ``encoding``  — calling-context encoding updates at instrumented sites.
* ``interpose`` — entering/leaving the interposition shim per heap call.
* ``metadata``  — maintaining the defense's own per-buffer metadata.
* ``lookup``    — patch hash-table lookups.
* ``defense``   — enforcement on patched buffers (guard pages, zeroing,
  deferred free).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict


@dataclass(frozen=True)
class CostModel:
    """Cycle costs for each primitive operation."""

    #: Direct call + return pair.
    call: int = 4
    #: One encoding update (``V = 3*t + c``: load, multiply-add, store).
    encode_site: int = 3
    #: Reading V in the prologue of an instrumented function.
    encode_prologue: int = 1
    #: Baseline allocator work per malloc/free (bin search, header writes).
    heap_op: int = 60
    #: Entering and leaving the interposition shim (PLT indirection,
    #: saving the real-function pointers, tail call, cache misses on the
    #: shim's own state).
    interpose: int = 60
    #: Maintaining the defense's own metadata word and size bookkeeping
    #: (one extra cache line touched per buffer).
    metadata: int = 65
    #: One lookup in the read-only patch hash table.
    hash_lookup: int = 9
    #: An ``mprotect`` system call (guard-page install or release).
    mprotect: int = 3000
    #: Per-byte cost of zero-filling a buffer (uninitialized-read defense).
    zero_fill_per_byte: float = 0.25
    #: Enqueue/evict operations on the deferred-free FIFO queue.
    quarantine_op: int = 20
    #: Per-8-bytes cost of a guest memory read or write.
    mem_word: int = 1
    #: Fixed cost of issuing a guest memory operation.
    mem_op: int = 2

    def mem_cost(self, size: int) -> int:
        """Cycles for a guest memory access of ``size`` bytes."""
        return self.mem_op + max(1, (size + 7) // 8) * self.mem_word


#: The default model used across the library.
DEFAULT_COST_MODEL = CostModel()


@dataclass
class CycleMeter:
    """Accumulates cycles by category.

    One meter is shared between a :class:`~repro.program.process.Process`
    and any defense layer wrapped around its allocator, so the full
    overhead decomposition lands in one place.
    """

    model: CostModel = field(default_factory=lambda: DEFAULT_COST_MODEL)
    by_category: Dict[str, int] = field(default_factory=dict)

    def charge(self, category: str, cycles: float) -> None:
        """Add ``cycles`` to ``category`` (fractions accumulate exactly)."""
        self.by_category[category] = (
            self.by_category.get(category, 0) + cycles)

    @property
    def total(self) -> float:
        """All cycles across categories."""
        return sum(self.by_category.values())

    def category(self, name: str) -> float:
        """Cycles charged to ``name`` so far."""
        return self.by_category.get(name, 0)

    def snapshot(self) -> Dict[str, float]:
        """Copy of the per-category totals."""
        return dict(self.by_category)

    def reset(self) -> None:
        """Zero every category."""
        self.by_category.clear()
