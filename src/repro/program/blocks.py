"""Basic-block batched guest execution.

A guest program normally issues one :class:`~repro.program.process.Process`
method call per simulated instruction — every load, store, fill and value
use pays Python dispatch through the process *and* the monitor.  For
straight-line instruction runs that is pure overhead: the op sequence, the
access sizes and the cycle charges are all static, only the base addresses
vary.

:class:`BasicBlock` captures such a run once, pre-decoded: a tuple of
opcode tuples whose address operands are ``(arg_index, offset)`` pairs
resolved against the block's runtime arguments, with every cycle charge
pre-computed against a :class:`~repro.program.cost.CostModel` (both the
block total and the running prefix sums, so a faulting block can charge
exactly what the per-instruction path would have).  The process dispatches
the whole run with one call — ``process.exec_block(block, *args)`` — and
the monitor executes it:

* :meth:`ExecutionMonitor.exec_block` (the generic default) loops over the
  block calling the ordinary per-op monitor methods, so interpreting
  monitors (the shadow analyzer) observe exactly the per-instruction
  stream and need no changes;
* :meth:`DirectMonitor.exec_block` overrides it with a fused loop: one
  batched cycle charge, direct word-view memory traffic, no
  :class:`~repro.program.values.TaggedValue` boxing.

Equivalence obligations (enforced by
``tests/program/test_block_equivalence.py``): for any block and argument
vector, batched execution must produce the same memory contents, the same
outputs, the same cycle totals per category, and — when an op faults — the
same first faulting address with the same cycles consumed as issuing the
ops one by one.  Blocks never contain heap calls or control flow; those
stay on the per-instruction path where contexts and schedulers see them.
"""

from __future__ import annotations

from typing import Any, List, Sequence, Tuple

from .cost import CostModel, DEFAULT_COST_MODEL
from .values import TaggedValue

# Opcodes.  Each op is a plain tuple ``(opcode, ...)``; address operands
# are an ``(arg_index, offset)`` pair meaning ``args[arg_index] + offset``.
OP_COMPUTE = 0        # (op, cycles)
OP_READ_W = 1         # (op, argi, off, slot)          8-byte load
OP_READ = 2           # (op, argi, off, size, slot)    generic load
OP_WRITE_IMM = 3      # (op, argi, off, value, data)   static bytes
OP_WRITE_IMM_W = 4    # (op, argi, off, value, word)   static 8B as a word
OP_WRITE_IMM_PAIR = 5  # (op, argi, off, value, lo, hi) static 16B
OP_WRITE_ARG_W = 6    # (op, argi, off, vargi)         8B int from args
OP_WRITE_REG_W = 7    # (op, argi, off, slot)          store a READ_W slot
OP_WRITE_REG = 8      # (op, argi, off, slot, size)    store a READ slot
OP_FILL = 9           # (op, argi, off, size, byte)
OP_COPY = 10          # (op, dargi, doff, sargi, soff, size)
OP_USE_W = 11         # (op, slot, kind)               use a READ_W slot
OP_USE = 12           # (op, slot, kind)               use a READ slot
OP_SYSCALL_OUT = 13   # (op, argi, off, size)
OP_SYSCALL_IN = 14    # (op, argi, off, data)
OP_SENDFILE = 15      # (op, argi, off, size)   zero-copy send


class BlockError(ValueError):
    """Malformed block construction (bad slot, empty block, ...)."""


class BasicBlock:
    """An immutable pre-decoded straight-line op run.

    Build via :class:`BlockBuilder`; execute via
    ``process.exec_block(block, *args)``.

    Attributes:
        ops: tuple of opcode tuples (see module constants).
        nslots: number of value registers the block reads into.
        model: the cost model the cycle pre-computation used; fused
            execution is only valid under the same model.
        base_cycles: total "base" cycles the ops charge.
        cum_cycles: prefix sums — ``cum_cycles[i]`` is the cycles charged
            once op ``i`` has *started* (per-op dispatch charges before
            accessing memory, so a fault inside op ``i`` leaves exactly
            ``cum_cycles[i]`` on the meter).
        n_args: how many runtime arguments the ops reference.
        instructions: guest instructions the block represents, counted at
            word granularity exactly like :meth:`CostModel.mem_cost`
            charges them — a 256-byte fill is 32 word stores even though
            the substrate executes it as one batched call.  This is the
            honest numerator for instruction-rate benchmarks.
    """

    __slots__ = ("ops", "nslots", "model", "base_cycles", "cum_cycles",
                 "n_args", "instructions", "run_ops")

    def __init__(self, ops: Sequence[Tuple], nslots: int,
                 model: CostModel, cycles: Sequence[float],
                 n_args: int, instructions: int = 0) -> None:
        if not ops:
            raise BlockError("a basic block needs at least one op")
        self.ops = tuple(ops)
        self.nslots = nslots
        self.model = model
        # Start from int 0 so all-integer charges stay integral and the
        # batched meter totals compare (and serialize) exactly like the
        # per-op path's.
        total = 0
        cum: List[float] = []
        for charge in cycles:
            total += charge
            cum.append(total)
        self.cum_cycles = tuple(cum)
        self.base_cycles = total
        self.n_args = n_args
        self.instructions = instructions if instructions > 0 else len(ops)
        # COMPUTE ops are pure cycle charges: under batched charging the
        # fused executors have nothing to do for them, so they iterate
        # this pre-filtered view.  The original op index rides along to
        # keep fault accounting (``cum_cycles[i]``) exact.
        self.run_ops = tuple((i, op) for i, op in enumerate(self.ops)
                             if op[0] != OP_COMPUTE)

    def __len__(self) -> int:
        return len(self.ops)

    # ------------------------------------------------------------------
    # Reference execution: the per-instruction Process API
    # ------------------------------------------------------------------

    def interpret(self, process: Any, args: Sequence[int]) -> List[Any]:
        """Run the block through the ordinary per-op ``Process`` methods.

        This is the batched path's semantic reference (and the path taken
        under a lock-step scheduler, where every op must remain a
        preemption point).  Returns the block's outputs: one entry per
        USE / SYSCALL_OUT op, in op order.
        """
        regs: List[Any] = [None] * self.nslots
        out: List[Any] = []
        for op in self.ops:
            code = op[0]
            if code == OP_READ_W:
                regs[op[3]] = process.read(args[op[1]] + op[2], 8)
            elif code == OP_USE_W or code == OP_USE:
                if op[2] == "address":
                    out.append(process.use_as_address(regs[op[1]]))
                else:
                    out.append(process.branch_on(regs[op[1]]))
            elif code == OP_WRITE_ARG_W:
                process.write_int(args[op[1]] + op[2], args[op[3]], 8)
            elif (code == OP_WRITE_IMM or code == OP_WRITE_IMM_W
                  or code == OP_WRITE_IMM_PAIR):
                process.write(args[op[1]] + op[2], op[3])
            elif code == OP_COMPUTE:
                process.compute(op[1])
            elif code == OP_FILL:
                process.fill(args[op[1]] + op[2], op[3], op[4])
            elif code == OP_READ:
                regs[op[4]] = process.read(args[op[1]] + op[2], op[3])
            elif code == OP_WRITE_REG_W or code == OP_WRITE_REG:
                process.write(args[op[1]] + op[2], regs[op[3]])
            elif code == OP_COPY:
                process.copy(args[op[1]] + op[2], args[op[3]] + op[4],
                             op[5])
            elif code == OP_SYSCALL_OUT:
                out.append(process.syscall_out(args[op[1]] + op[2], op[3]))
            elif code == OP_SYSCALL_IN:
                process.syscall_in(args[op[1]] + op[2], op[3])
            elif code == OP_SENDFILE:
                out.append(process.sendfile(args[op[1]] + op[2], op[3]))
            else:  # pragma: no cover - builder emits only known opcodes
                raise BlockError(f"unknown opcode {code}")
        return out


class BlockBuilder:
    """Accumulates ops and compiles a :class:`BasicBlock`.

    Address operands are ``(arg, offset)``: ``arg`` indexes the argument
    vector later passed to ``exec_block`` (the block inputs — typically
    buffer base addresses), ``offset`` is a static byte offset.  ``read``
    and ``read_int`` return *slot handles* to feed to ``write_value`` /
    ``branch_on`` / ``use_as_address``.
    """

    def __init__(self, model: CostModel = DEFAULT_COST_MODEL) -> None:
        self._model = model
        self._ops: List[Tuple] = []
        self._cycles: List[float] = []
        #: slot -> size in bytes; wide slots (8B word loads) are negative.
        self._slots: List[int] = []
        self._n_args = 0
        #: Word-granular guest instruction count (see BasicBlock).
        self._instructions = 0

    # -- helpers -------------------------------------------------------

    @staticmethod
    def _words(size: int) -> int:
        """Guest instructions a ``size``-byte access stands for."""
        return max(1, (size + 7) // 8)

    def _addr(self, arg: int, offset: int) -> Tuple[int, int]:
        if arg < 0:
            raise BlockError(f"argument index must be >= 0, got {arg}")
        if arg + 1 > self._n_args:
            self._n_args = arg + 1
        return arg, offset

    def _slot(self, handle: int, wide: bool) -> int:
        if not 0 <= handle < len(self._slots):
            raise BlockError(f"unknown value slot {handle}")
        if (self._slots[handle] < 0) != wide:
            # Wrong accessor for the slot's kind; pick the matching one.
            raise BlockError(f"slot {handle} kind mismatch")
        return handle

    def _kind_of(self, handle: int) -> bool:
        if not 0 <= handle < len(self._slots):
            raise BlockError(f"unknown value slot {handle}")
        return self._slots[handle] < 0

    # -- op emitters ---------------------------------------------------

    def compute(self, cycles: int) -> None:
        """Pure computation: charges ``cycles`` to the baseline."""
        self._ops.append((OP_COMPUTE, cycles))
        self._cycles.append(cycles)
        self._instructions += 1

    def read(self, arg: int, offset: int, size: int) -> int:
        """Load ``size`` bytes; returns a value-slot handle."""
        if size <= 0:
            raise BlockError(f"invalid read size {size}")
        argi, off = self._addr(arg, offset)
        slot = len(self._slots)
        if size == 8:
            self._slots.append(-8)
            self._ops.append((OP_READ_W, argi, off, slot))
        else:
            self._slots.append(size)
            self._ops.append((OP_READ, argi, off, size, slot))
        self._cycles.append(self._model.mem_cost(size))
        self._instructions += self._words(size)
        return slot

    def read_int(self, arg: int, offset: int, size: int = 8) -> int:
        """Load an integer-sized value; alias of :meth:`read`."""
        return self.read(arg, offset, size)

    def write(self, arg: int, offset: int, data: bytes) -> None:
        """Store static bytes."""
        data = bytes(data)
        if not data:
            raise BlockError("empty write")
        argi, off = self._addr(arg, offset)
        value = TaggedValue.of_bytes(data)
        if len(data) == 8:
            word = int.from_bytes(data, "little")
            self._ops.append((OP_WRITE_IMM_W, argi, off, value, word))
        elif len(data) == 16:
            lo = int.from_bytes(data[:8], "little")
            hi = int.from_bytes(data[8:], "little")
            self._ops.append((OP_WRITE_IMM_PAIR, argi, off, value, lo, hi))
        else:
            self._ops.append((OP_WRITE_IMM, argi, off, value, data))
        self._cycles.append(self._model.mem_cost(len(data)))
        self._instructions += self._words(len(data))

    def write_int(self, arg: int, offset: int, value: int,
                  size: int = 8) -> None:
        """Store a static little-endian integer."""
        self.write(arg, offset, TaggedValue.of_int(value, size).data)

    def write_arg(self, arg: int, offset: int, value_arg: int) -> None:
        """Store a *runtime* argument as an 8-byte integer."""
        argi, off = self._addr(arg, offset)
        if value_arg < 0:
            raise BlockError(f"argument index must be >= 0, got {value_arg}")
        if value_arg + 1 > self._n_args:
            self._n_args = value_arg + 1
        self._ops.append((OP_WRITE_ARG_W, argi, off, value_arg))
        self._cycles.append(self._model.mem_cost(8))
        self._instructions += 1

    def write_value(self, arg: int, offset: int, slot: int) -> None:
        """Store a previously loaded value slot."""
        argi, off = self._addr(arg, offset)
        if self._kind_of(slot):
            self._ops.append((OP_WRITE_REG_W, argi, off, slot))
            size = 8
        else:
            size = self._slots[slot]
            self._ops.append((OP_WRITE_REG, argi, off, slot, size))
        self._cycles.append(self._model.mem_cost(size))
        self._instructions += self._words(size)

    def fill(self, arg: int, offset: int, size: int, byte: int = 0) -> None:
        """``memset`` a static-size range."""
        if size <= 0:
            raise BlockError(f"invalid fill size {size}")
        argi, off = self._addr(arg, offset)
        self._ops.append((OP_FILL, argi, off, size, byte))
        self._cycles.append(self._model.mem_cost(size))
        self._instructions += self._words(size)

    def copy(self, dst_arg: int, dst_offset: int, src_arg: int,
             src_offset: int, size: int) -> None:
        """``memcpy`` a static-size range between two argument bases."""
        if size <= 0:
            raise BlockError(f"invalid copy size {size}")
        dargi, doff = self._addr(dst_arg, dst_offset)
        sargi, soff = self._addr(src_arg, src_offset)
        self._ops.append((OP_COPY, dargi, doff, sargi, soff, size))
        self._cycles.append(self._model.mem_cost(size) * 2)
        self._instructions += 2 * self._words(size)

    def branch_on(self, slot: int) -> None:
        """Use a loaded value for control flow; emits one block output."""
        code = OP_USE_W if self._kind_of(slot) else OP_USE
        self._ops.append((code, slot, "branch"))
        self._cycles.append(1)
        self._instructions += 1

    def use_as_address(self, slot: int) -> None:
        """Use a loaded value as an address; emits one block output."""
        code = OP_USE_W if self._kind_of(slot) else OP_USE
        self._ops.append((code, slot, "address"))
        self._cycles.append(1)
        self._instructions += 1

    def syscall_out(self, arg: int, offset: int, size: int) -> None:
        """Send a buffer to the outside world; emits one block output."""
        if size <= 0:
            raise BlockError(f"invalid syscall_out size {size}")
        argi, off = self._addr(arg, offset)
        self._ops.append((OP_SYSCALL_OUT, argi, off, size))
        self._cycles.append(self._model.mem_cost(size))
        self._instructions += self._words(size)

    def sendfile(self, arg: int, offset: int, size: int) -> None:
        """Send a buffer zero-copy (``sendfile``/``writev`` from cached
        pages): same access check and cycle charge as :meth:`syscall_out`,
        but the block output is the byte *count*, not a copy of the data.
        """
        if size <= 0:
            raise BlockError(f"invalid sendfile size {size}")
        argi, off = self._addr(arg, offset)
        self._ops.append((OP_SENDFILE, argi, off, size))
        self._cycles.append(self._model.mem_cost(size))
        self._instructions += self._words(size)

    def syscall_in(self, arg: int, offset: int, data: bytes) -> None:
        """Receive static external bytes into a buffer."""
        data = bytes(data)
        if not data:
            raise BlockError("empty syscall_in")
        argi, off = self._addr(arg, offset)
        self._ops.append((OP_SYSCALL_IN, argi, off, data))
        self._cycles.append(self._model.mem_cost(len(data)))
        self._instructions += self._words(len(data))

    def build(self) -> BasicBlock:
        """Compile the accumulated ops into an immutable block."""
        return BasicBlock(self._ops, len(self._slots), self._model,
                          self._cycles, self._n_args, self._instructions)
