"""Context-source protocol: who answers "what is the current CCID?".

The online system reads the current calling-context ID from the encoding
runtime (one thread-local integer); the offline analyzer may instead walk
the simulated call stack.  Both are :class:`ContextSource` implementations;
the :class:`~repro.program.process.Process` drives the hooks as the guest
program calls and returns, and the defense/analysis layers query
:meth:`current_ccid` at each allocation.

Keeping the protocol here (rather than in :mod:`repro.ccencoding`) breaks
the import cycle between the program model and the encoders.
"""

from __future__ import annotations

import abc

from .callgraph import CallSite


class ContextSource(abc.ABC):
    """Provider of allocation-time calling-context identifiers."""

    #: True when :meth:`current_ccid` is a *pure read* — no counters, no
    #: cycle charges, no state changes.  Fused interposition fast paths
    #: may skip the read entirely for allocation functions that provably
    #: have no patches, but only when skipping it is unobservable.  A
    #: stack walker (whose walks are counted and charged) must leave
    #: this False.
    pure_ccid: bool = False

    @abc.abstractmethod
    def current_ccid(self) -> int:
        """The CCID to associate with an allocation happening now."""

    def enter_function(self, name: str) -> None:
        """The process entered function ``name``."""

    def exit_function(self, name: str) -> None:
        """The process is returning from function ``name``."""

    def at_call_site(self, site: CallSite) -> None:
        """The process is about to call through ``site``."""


class NullContextSource(ContextSource):
    """No context tracking at all (pure native execution)."""

    pure_ccid = True

    def current_ccid(self) -> int:
        return 0
