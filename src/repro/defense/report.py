"""Defense run reports: what the online system actually did.

Operators deploying heap patches want an account of the defense's
activity — how many buffers were enhanced and how, what the quarantine
holds, what the enforcement cost was.  ``DefenseReport`` summarizes a
:class:`~repro.defense.interpose.DefendedAllocator` after a run; the
pipeline and CLI render it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from ..vulntypes import VulnType
from .interpose import DefendedAllocator


@dataclass(frozen=True)
class DefenseReport:
    """Summary of one defended execution."""

    patches_installed: int
    allocations: int
    frees: int
    guarded_buffers: int
    zero_filled_buffers: int
    deferral_marked_buffers: int
    quarantine_blocks: int
    quarantine_bytes: int
    quarantine_evictions: int
    mprotect_calls: int
    cost_by_category: Dict[str, float]

    @property
    def enhanced_buffers(self) -> int:
        """Buffers that received at least one enhancement (upper bound:
        a buffer with several bits counts once per bit)."""
        return (self.guarded_buffers + self.zero_filled_buffers
                + self.deferral_marked_buffers)

    @property
    def enhancement_rate(self) -> float:
        """Fraction of allocations that matched a patch."""
        if not self.allocations:
            return 0.0
        return min(1.0, self.enhanced_buffers / self.allocations)

    @staticmethod
    def from_allocator(allocator: DefendedAllocator) -> "DefenseReport":
        """Collect the report from a finished run's interposer."""
        meter = allocator.meter
        return DefenseReport(
            patches_installed=len(allocator.table),
            allocations=allocator.stats.total_allocations,
            frees=allocator.stats.free_calls,
            guarded_buffers=allocator.enhanced_counts[VulnType.OVERFLOW],
            zero_filled_buffers=allocator.enhanced_counts[
                VulnType.UNINIT_READ],
            deferral_marked_buffers=allocator.enhanced_counts[
                VulnType.USE_AFTER_FREE],
            quarantine_blocks=len(allocator.quarantine),
            quarantine_bytes=allocator.quarantine.held_bytes,
            quarantine_evictions=allocator.quarantine.evicted,
            mprotect_calls=allocator.memory.mprotect_count,
            cost_by_category=(meter.snapshot() if meter is not None
                              else {}),
        )

    def to_dict(self) -> Dict[str, object]:
        """JSON-serializable form."""
        return {
            "patches_installed": self.patches_installed,
            "allocations": self.allocations,
            "frees": self.frees,
            "guarded_buffers": self.guarded_buffers,
            "zero_filled_buffers": self.zero_filled_buffers,
            "deferral_marked_buffers": self.deferral_marked_buffers,
            "quarantine_blocks": self.quarantine_blocks,
            "quarantine_bytes": self.quarantine_bytes,
            "quarantine_evictions": self.quarantine_evictions,
            "mprotect_calls": self.mprotect_calls,
            "enhancement_rate": self.enhancement_rate,
            "cost_by_category": dict(self.cost_by_category),
        }

    def render(self) -> str:
        """Multi-line human-readable summary."""
        lines = [
            "defense report",
            f"  patches installed:        {self.patches_installed}",
            f"  allocations intercepted:  {self.allocations}",
            f"  frees intercepted:        {self.frees}",
            f"  guard pages installed:    {self.guarded_buffers}",
            f"  buffers zero-filled:      {self.zero_filled_buffers}",
            f"  frees deferred (UAF):     {self.deferral_marked_buffers}",
            f"  quarantine now holds:     {self.quarantine_blocks} "
            f"block(s), {self.quarantine_bytes} bytes",
            f"  quarantine evictions:     {self.quarantine_evictions}",
            f"  mprotect calls:           {self.mprotect_calls}",
            f"  enhancement rate:         {self.enhancement_rate:.2%}",
        ]
        if self.cost_by_category:
            total = sum(self.cost_by_category.values())
            lines.append("  cost decomposition:")
            for category, cycles in sorted(self.cost_by_category.items(),
                                           key=lambda item: -item[1]):
                lines.append(f"    {category:<10} {cycles:>14,.0f} cycles"
                             f" ({cycles / total * 100:5.2f}%)")
        return "\n".join(lines)
