"""Online defense generation: code-less patching at allocation time.

The lightweight half of HeapTherapy+: a patch table loaded from
configuration, an allocation-API interposer, and the four buffer
structures that make guard pages, zero-fill and deferred free precise to
vulnerable calling contexts only.
"""

from .interpose import DEFAULT_ONLINE_QUOTA, DefendedAllocator
from .metadata import METADATA_SIZE, BufferMetadata, MetadataError
from .patch_table import PatchTable, PatchTableFrozen
from .report import DefenseReport
from .sealed_table import SealedPatchTable
from .structures import (
    MIN_DEFENSE_ALIGNMENT,
    PlacedBuffer,
    RequestPlan,
    StructureError,
    buffer_start,
    place_buffer,
    plan_request,
    structure_for,
)

__all__ = [
    "BufferMetadata",
    "DEFAULT_ONLINE_QUOTA",
    "DefendedAllocator",
    "DefenseReport",
    "METADATA_SIZE",
    "MIN_DEFENSE_ALIGNMENT",
    "MetadataError",
    "PatchTable",
    "PatchTableFrozen",
    "PlacedBuffer",
    "RequestPlan",
    "SealedPatchTable",
    "StructureError",
    "buffer_start",
    "place_buffer",
    "plan_request",
    "structure_for",
]
