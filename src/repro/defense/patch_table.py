"""The read-only patch hash table (paper Figure 5, Section VI).

Loaded once at program initialization from the configuration file, keyed
by ``(ALLOCATION_FUNCTION, CCID)``, then frozen — mirroring the paper's
``mprotect``-ing of the table pages to read-only.  Lookup is a plain dict
access, the O(1) the paper leans on; the cycle cost is charged by the
interposer, not here.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, Iterable, List, Mapping, Optional, Tuple, Union

from ..patch.config import HEADER
from ..patch.config import load as load_config
from ..patch.model import HeapPatch, merge_patches, patch_sort_key

#: Shared empty per-function map; returned for functions with no patches
#: so hot paths can cache one object and probe it unconditionally.
_NO_PATCHES: Dict[int, HeapPatch] = {}


class PatchTableFrozen(RuntimeError):
    """Mutation attempted after initialization finished."""


class PatchTable:
    """Immutable-after-init map from (fun, ccid) to patch."""

    def __init__(self, patches: Iterable[HeapPatch] = ()) -> None:
        self._table: Dict[Tuple[str, int], HeapPatch] = {}
        self._by_fun: Dict[str, Dict[int, HeapPatch]] = {}
        self._frozen = False
        for patch in patches:
            self.add(patch)
        self.freeze()

    @staticmethod
    def from_config_file(path: Union[str, Path]) -> "PatchTable":
        """The library-constructor path: read the config file and freeze."""
        return PatchTable(load_config(path))

    @staticmethod
    def empty() -> "PatchTable":
        """A frozen, patch-less table (the "zero patches" deployment)."""
        return PatchTable(())

    @classmethod
    def merged(cls, groups: Iterable[Iterable[HeapPatch]]) -> "PatchTable":
        """Deterministically merge patch groups into one frozen table.

        The order-independent merge of
        :func:`repro.patch.model.merge_patches`: duplicate ``(fun, ccid)``
        keys take the widest vulnerability mask and the union of params,
        and insertion happens in canonical sort order — so a table merged
        from N process-pool shards serializes byte-identical to the table
        a single serial diagnosis would produce.
        """
        return cls(merge_patches(groups))

    def serialize(self) -> str:
        """Canonical configuration text for this table.

        Patches are emitted in :func:`~repro.patch.model.patch_sort_key`
        order, making the output a content hash of the table: two tables
        serialize identically iff they hold the same patches.
        """
        lines = [HEADER]
        lines.extend(patch.render()
                     for patch in sorted(self._table.values(),
                                         key=patch_sort_key))
        return "\n".join(lines) + "\n"

    def add(self, patch: HeapPatch) -> None:
        """Insert one patch; merges vulnerability masks on key collision."""
        if self._frozen:
            raise PatchTableFrozen(
                "patch table is read-only after initialization")
        existing = self._table.get(patch.key)
        if existing is not None:
            patch = HeapPatch(patch.fun, patch.ccid,
                              existing.vuln | patch.vuln,
                              existing.params + patch.params)
        self._table[patch.key] = patch

    def freeze(self) -> None:
        """Make the table read-only (idempotent).

        Freezing also builds the per-function index behind
        :meth:`per_fun` — the concrete object the interposer's hot path
        probes, mirroring the paper's read-only table pages.
        """
        self._frozen = True
        by_fun: Dict[str, Dict[int, HeapPatch]] = {}
        for (fun, ccid), patch in self._table.items():
            by_fun.setdefault(fun, {})[ccid] = patch
        self._by_fun = by_fun

    def per_fun(self, fun: str) -> Mapping[int, HeapPatch]:
        """The frozen ``ccid -> patch`` map for one allocation function.

        The returned mapping is stable for the table's lifetime, so
        callers may cache it and reduce the paper's "one register read +
        O(1) lookup" to a single dict probe per allocation.
        """
        if not self._frozen:
            raise PatchTableFrozen(
                "per_fun requires a frozen table (lookup maps are built "
                "at freeze time)")
        return self._by_fun.get(fun, _NO_PATCHES)

    @property
    def frozen(self) -> bool:
        """True once initialization is complete."""
        return self._frozen

    def lookup(self, fun: str, ccid: int) -> Optional[HeapPatch]:
        """O(1) check whether the allocation about to happen is patched."""
        return self._table.get((fun, ccid))

    @property
    def patches(self) -> List[HeapPatch]:
        """All installed patches."""
        return list(self._table.values())

    def __len__(self) -> int:
        return len(self._table)

    def __contains__(self, key: Tuple[str, int]) -> bool:
        return key in self._table
