"""The patch hash table sealed into read-only memory pages.

Figure 5's note — "once the hash table is initialized, its memory pages
are set as read only" — is a hardening detail with teeth: an attacker
who gains an arbitrary-write primitive through some *other* bug must not
be able to switch the defense off by editing the table.
:class:`PatchTable` models the semantics (frozen after init);
``SealedPatchTable`` models the mechanism: the table is laid out as an
open-addressing hash structure inside actual simulated memory pages,
lookups are performed by reading those pages, and after initialization
the pages are ``mprotect``-ed read-only — so a stray or hostile write
faults instead of corrupting policy.

Slot layout (32 bytes each)::

    +0   fun tag      (8 bytes: index into the allocation-function table,
                        0 = empty slot; tag = index + 1)
    +8   ccid         (8 bytes)
    +16  vuln mask    (8 bytes)
    +24  reserved     (8 bytes)
"""

from __future__ import annotations

from typing import Iterable, Optional

from ..allocator.base import ALLOCATION_FUNCTIONS
from ..machine.layout import PAGE_SIZE, page_align_up
from ..machine.memory import PROT_READ, PROT_RW, VirtualMemory
from ..patch.model import HeapPatch
from ..vulntypes import VulnType

#: Bytes per hash slot.
SLOT_SIZE = 32

#: Table load factor: slots = next power of two >= patches / LOAD.
LOAD_FACTOR = 0.5


def _mix(fun_index: int, ccid: int, slots: int) -> int:
    """Probe start for a (fun, ccid) key."""
    h = (ccid * 0x9E3779B97F4A7C15 + fun_index * 0xBF58476D1CE4E5B9)
    h &= (1 << 64) - 1
    return (h >> 17) % slots


class SealedPatchTable:
    """Patch lookups served from read-only simulated memory.

    Args:
        memory: the address space to seal the table into (the same one
            the defended process runs in — that is the point).
        patches: the configuration to install.
    """

    def __init__(self, memory: VirtualMemory,
                 patches: Iterable[HeapPatch]) -> None:
        self.memory = memory
        entries = list(patches)
        slots = 8
        while slots * LOAD_FACTOR < max(len(entries), 1):
            slots *= 2
        self.slot_count = slots
        length = page_align_up(max(slots * SLOT_SIZE, 1))
        self.base = memory.mmap(length, prot=PROT_RW)
        self._length = length
        self._count = 0
        for patch in entries:
            self._insert(patch)
        # Initialization done: seal the pages (Figure 5's note).
        memory.mprotect(self.base, length, PROT_READ)

    # ------------------------------------------------------------------

    def _slot_address(self, index: int) -> int:
        return self.base + index * SLOT_SIZE

    def _insert(self, patch: HeapPatch) -> None:
        fun_index = ALLOCATION_FUNCTIONS.index(patch.fun)
        tag = fun_index + 1
        index = _mix(fun_index, patch.ccid, self.slot_count)
        for _ in range(self.slot_count):
            address = self._slot_address(index)
            existing_tag = self.memory.read_word(address)
            if existing_tag == 0:
                self.memory.write_word(address, tag)
                self.memory.write_word(address + 8, patch.ccid)
                self.memory.write_word(address + 16, int(patch.vuln))
                self._count += 1
                return
            if (existing_tag == tag
                    and self.memory.read_word(address + 8) == patch.ccid):
                # Duplicate key: union the masks (PatchTable semantics).
                merged = (self.memory.read_word(address + 16)
                          | int(patch.vuln))
                self.memory.write_word(address + 16, merged)
                return
            index = (index + 1) % self.slot_count
        raise RuntimeError("sealed table over capacity")  # pragma: no cover

    # ------------------------------------------------------------------

    def lookup(self, fun: str, ccid: int) -> Optional[HeapPatch]:
        """O(1) expected probe over the sealed pages."""
        try:
            fun_index = ALLOCATION_FUNCTIONS.index(fun)
        except ValueError:
            return None
        tag = fun_index + 1
        index = _mix(fun_index, ccid, self.slot_count)
        for _ in range(self.slot_count):
            address = self._slot_address(index)
            slot_tag = self.memory.read_word(address)
            if slot_tag == 0:
                return None
            if slot_tag == tag and self.memory.read_word(address + 8) == ccid:
                vuln = VulnType(self.memory.read_word(address + 16))
                return HeapPatch(fun, ccid, vuln)
            index = (index + 1) % self.slot_count
        return None

    def __len__(self) -> int:
        return self._count

    @property
    def frozen(self) -> bool:
        """Sealed tables are read-only by construction."""
        return True
