"""The Online Defense Generator (paper Section VI, Figures 5–7).

``DefendedAllocator`` is the reproduction of the ``LD_PRELOAD`` shared
library: it implements the public :class:`~repro.allocator.base.Allocator`
API, wraps *any* other allocator, and never touches that allocator's
internals — every piece of state it needs at ``free``/``realloc`` time is
self-maintained in the per-buffer metadata word (and, for guarded buffers,
the first word of the guard page).

Per allocation it does exactly what the paper describes:

1. read the current CCID from the encoding runtime (one register read),
2. look up ``(allocation function, CCID)`` in the read-only patch table —
   O(1),
3. lay the buffer out as Structure 1–4 and apply the matched enhancements:
   guard page (``mprotect``) against overflow, zero-fill against
   uninitialized read, deferred-free FIFO against use after free.

Unpatched buffers still pay interposition + metadata — that is the 4.3%
"zero patches" bar of Figure 8 — while enhancement cost is confined to
vulnerable contexts, which is the whole point of heap patches as
configuration.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..allocator.base import Allocator
from ..allocator.stats import AllocationStats
from ..common.fifo import FreedBlock, FreedBlockQueue
from ..machine.errors import OutOfMemoryError
from ..machine.layout import PAGE_SIZE, SIZE_MAX, is_power_of_two
from ..machine.memory import PROT_NONE, PROT_RW
from ..patch.model import HeapPatch
from ..program.context import ContextSource, NullContextSource
from ..program.cost import CycleMeter
from ..vulntypes import VulnType
from .metadata import METADATA_SIZE, BufferMetadata
from .patch_table import PatchTable
from .structures import buffer_start, place_buffer, plan_request

#: Largest user size representable in the metadata word's 48-bit size
#: field; bigger requests take the generic (validating) path.
_MAX_INLINE_SIZE = (1 << 48) - 1

#: Bit position of the user-size field in the metadata word (Figure 6);
#: for an unpatched, unaligned buffer the whole word is ``size << 4``.
_METADATA_SIZE_SHIFT = 4


class _LookupView:
    """``ccid -> patch`` probe for tables without :meth:`per_fun`.

    The interposer only requires ``lookup``/``frozen``/``__len__`` of a
    table (e.g. :class:`~repro.defense.sealed_table.SealedPatchTable`);
    this adapter gives such tables the same ``.get(ccid)`` face the
    hot path uses for frozen per-function maps.
    """

    __slots__ = ("_lookup", "_fun")

    def __init__(self, lookup, fun: str) -> None:
        self._lookup = lookup
        self._fun = fun

    def get(self, ccid: int) -> Optional[HeapPatch]:
        return self._lookup(self._fun, ccid)

#: Default byte quota of the online deferred-free queue (paper: 2 GB,
#: customizable; only patched buffers ever enter it).
DEFAULT_ONLINE_QUOTA = 2 * 1024 * 1024 * 1024


class DefendedAllocator(Allocator):
    """Allocation-API interposer enforcing heap patches.

    Args:
        underlying: the real allocator; only its public API is used.
        table: the frozen patch table.
        context_source: where CCIDs come from (the encoding runtime).
        meter: cycle meter for the overhead decomposition; optional.
        quarantine_quota: byte quota for the deferred-free queue.
    """

    def __init__(self, underlying: Allocator, table: PatchTable,
                 context_source: Optional[ContextSource] = None,
                 meter: Optional[CycleMeter] = None,
                 quarantine_quota: int = DEFAULT_ONLINE_QUOTA) -> None:
        if not table.frozen:
            raise ValueError("patch table must be frozen before use")
        self.underlying = underlying
        self.memory = underlying.memory
        self.table = table
        self.context_source = (context_source if context_source is not None
                               else NullContextSource())
        self.meter = meter
        self.quarantine = FreedBlockQueue(quarantine_quota)
        self.stats = AllocationStats()
        # Hot-path bindings: the CCID read is the paper's "one register
        # read"; the per-function patch maps are frozen at table-freeze
        # time, so caching them turns the lookup into one dict probe.
        self._current_ccid = self.context_source.current_ccid
        #: True when even the CCID read may be elided for functions the
        #: frozen table provably never patches (fused fast path): the
        #: read must be a pure register read (see
        #: :attr:`~repro.program.context.ContextSource.pure_ccid`).
        self._pure_ccid = bool(getattr(self.context_source,
                                       "pure_ccid", False))
        #: fun -> object with ``.get(ccid) -> Optional[HeapPatch]``:
        #: a frozen per-function map, or a :class:`_LookupView`.
        self._fun_patches: Dict[str, Any] = {}
        #: The table is frozen for this allocator's lifetime, so the
        #: fused-malloc precondition (provably no malloc patches + pure
        #: CCID read) is one precomputed bool, and the hot calls the
        #: fused paths make are prebound methods — malloc/free pay no
        #: attribute walks beyond one flag test each.
        self._fused_malloc = (not self._patches_for("malloc")
                              and self._pure_ccid)
        self._underlying_malloc = underlying.malloc
        self._underlying_free = underlying.free
        self._write_word = self.memory.write_word
        self._read_word = self.memory.read_word
        self._record_malloc = self.stats.record_malloc
        self._record_free = self.stats.record_free
        #: Buffers currently enhanced, by defense kind (for reports).
        self.enhanced_counts = {
            VulnType.OVERFLOW: 0,
            VulnType.USE_AFTER_FREE: 0,
            VulnType.UNINIT_READ: 0,
        }

    # ------------------------------------------------------------------
    # Cost helpers
    # ------------------------------------------------------------------

    def _charge(self, category: str, cycles: float) -> None:
        if self.meter is not None:
            self.meter.charge(category, cycles)

    def _charge_interposition(self) -> None:
        if self.meter is not None:
            model = self.meter.model
            self.meter.charge("interpose", model.interpose)
            self.meter.charge("metadata", model.metadata)

    # ------------------------------------------------------------------
    # Allocation family
    # ------------------------------------------------------------------

    def malloc(self, size: int) -> int:
        # Fused un-patched fast path, inlined: ``malloc`` is the hottest
        # entry point, and when the frozen table provably has no malloc
        # patches (empty per-fun map) and the CCID read is pure, the
        # whole interposition sequence collapses to one underlying call
        # plus the metadata-word stamp.  Observation-identical to
        # ``_allocate`` (which handles every other case).
        meter = self.meter
        if meter is not None:
            model = meter.model
            meter.charge("interpose", model.interpose)
            meter.charge("metadata", model.metadata)
            meter.charge("lookup", model.hash_lookup)
        if self._fused_malloc and 0 <= size <= _MAX_INLINE_SIZE:
            raw = self._underlying_malloc(METADATA_SIZE + size)
            self._write_word(raw, size << _METADATA_SIZE_SHIFT)
            self._record_malloc(size)
            return raw + METADATA_SIZE
        return self._allocate("malloc", size, _charged=meter is not None)

    def malloc_run(self, sizes: Sequence[int]) -> List[int]:
        """Batched ``malloc``: one same-call-site run of requests.

        Observation-identical to calling :meth:`malloc` per entry — same
        addresses, same stats, same cycles per category (``n`` per-call
        charges collapse into one ``n``-scaled charge) — because a run
        comes from a *single* call site: the CCID is the same for every
        entry, so the patch probe is hoisted out of the loop.  The hoist
        is only taken when the CCID read is pure (an impure source must
        be read once per allocation, exactly like the per-call path).
        """
        n = len(sizes)
        if n == 0:
            return []
        meter = self.meter
        if meter is not None:
            model = meter.model
            meter.charge("interpose", model.interpose * n)
            meter.charge("metadata", model.metadata * n)
            meter.charge("lookup", model.hash_lookup * n)
        if not self._pure_ccid:
            # The CCID read has observable effects; take it per entry.
            return [self._allocate("malloc", size, _charged=True)
                    for size in sizes]
        patches = self._fun_patches.get("malloc")
        if patches is None:
            patches = self._patches_for("malloc")
        patch = patches.get(self._current_ccid()) if patches else None
        if patch is None:
            if 0 <= min(sizes) and max(sizes) <= _MAX_INLINE_SIZE:
                # Whole-run fast path: one batched underlying request,
                # then stamp the metadata words in one scattered write.
                # Uniform runs (the request-batch shape) build their
                # size and stamp lists as C-speed repeats.
                first = sizes[0]
                if sizes.count(first) == n:
                    padded = [METADATA_SIZE + first] * n
                    stamps = [first << _METADATA_SIZE_SHIFT] * n
                else:
                    padded = [METADATA_SIZE + size for size in sizes]
                    stamps = [size << _METADATA_SIZE_SHIFT
                              for size in sizes]
                raws = self.underlying.malloc_run(padded)
                self.memory.write_word_scatter(raws, stamps)
                self.stats.record_malloc_run(sizes)
                return [raw + METADATA_SIZE for raw in raws]
            underlying_malloc = self._underlying_malloc
            write_word = self._write_word
            record = self._record_malloc
            out = []
            append = out.append
            for size in sizes:
                if not 0 <= size <= _MAX_INLINE_SIZE:
                    append(self._allocate("malloc", size, _charged=True))
                    continue
                raw = underlying_malloc(METADATA_SIZE + size)
                write_word(raw, size << _METADATA_SIZE_SHIFT)
                record(size)
                append(raw + METADATA_SIZE)
            return out
        return [self._allocate("malloc", size, _charged=True)
                for size in sizes]

    def calloc(self, nmemb: int, size: int) -> int:
        if nmemb < 0 or size < 0:
            raise ValueError("calloc: negative argument")
        total = nmemb * size
        if total > SIZE_MAX:
            # glibc's overflow check, enforced before the request ever
            # reaches the underlying allocator.
            raise OutOfMemoryError(
                f"calloc: {nmemb} * {size} overflows size_t")
        return self._allocate("calloc", total, zero=True)

    def memalign(self, alignment: int, size: int) -> int:
        return self._allocate("memalign", size, aligned=True,
                              alignment=alignment)

    def aligned_alloc(self, alignment: int, size: int) -> int:
        return self._allocate("aligned_alloc", size, aligned=True,
                              alignment=alignment)

    def posix_memalign(self, alignment: int, size: int) -> int:
        if alignment % 8 or not is_power_of_two(alignment):
            # POSIX: the alignment must be a power of two multiple of
            # sizeof(void*); EINVAL otherwise.
            raise ValueError("posix_memalign: alignment must be a "
                             "power-of-two multiple of sizeof(void*)")
        return self._allocate("posix_memalign", size, aligned=True,
                              alignment=alignment)

    def _patches_for(self, fun: str):
        patches = self._fun_patches.get(fun)
        if patches is None:
            per_fun = getattr(self.table, "per_fun", None)
            if per_fun is not None:
                patches = per_fun(fun)
            else:
                patches = _LookupView(self.table.lookup, fun)
            self._fun_patches[fun] = patches
        return patches

    def _allocate(self, fun: str, size: int, aligned: bool = False,
                  alignment: int = 0, zero: bool = False,
                  _charged: bool = False) -> int:
        meter = self.meter
        if meter is not None and not _charged:
            model = meter.model
            meter.charge("interpose", model.interpose)
            meter.charge("metadata", model.metadata)
            meter.charge("lookup", model.hash_lookup)
        patches = self._fun_patches.get(fun)
        if patches is None:
            patches = self._patches_for(fun)
        if patches or not self._pure_ccid:
            ccid = self._current_ccid()
            patch = patches.get(ccid)
        else:
            # Fused precondition: the frozen per-function map is *empty*
            # — no CCID of ``fun`` can match a patch — and the CCID read
            # is a pure register read.  Skip it entirely.  (A lookup
            # view without ``per_fun`` can never prove emptiness; it is
            # always truthy and takes the read.)
            patch = None

        if (patch is None and not aligned and not zero
                and 0 <= size <= _MAX_INLINE_SIZE):
            # Structure 1 fast path — the "zero patches" common case:
            # no guard, no zero-fill, no alignment.  Request metadata
            # word + user bytes, stamp the word (vuln NONE, unaligned:
            # the encoding degenerates to ``size << 4``), done.
            raw = self.underlying.malloc(METADATA_SIZE + size)
            user = raw + METADATA_SIZE
            self.memory.write_word(user - METADATA_SIZE,
                                   size << _METADATA_SIZE_SHIFT)
            self.stats.record_alloc(fun, size)
            return user

        vuln = patch.vuln if patch is not None else VulnType.NONE
        plan = plan_request(vuln, aligned, alignment, size)
        if plan.request_alignment:
            raw = self.underlying.memalign(plan.request_alignment,
                                           plan.request_size)
        else:
            raw = self.underlying.malloc(plan.request_size)
        placed = place_buffer(plan, raw, size)

        metadata = BufferMetadata(
            vuln=vuln,
            aligned=aligned,
            align_log2=(plan.user_alignment.bit_length() - 1
                        if aligned else 0),
            guard_page=placed.guard,
            user_size=0 if placed.guard else size,
        )
        self.memory.write_word(placed.metadata_address, metadata.encode())

        if placed.guard:
            # User size lives in the guard page's first word, then the
            # page is sealed.
            self.memory.write_word(placed.guard, size)
            self.memory.mprotect(placed.guard, PAGE_SIZE, PROT_NONE)
            self._charge("defense", self.meter.model.mprotect
                         if self.meter else 0)
            self.enhanced_counts[VulnType.OVERFLOW] += 1
        if zero or (vuln & VulnType.UNINIT_READ):
            if size:
                self.memory.fill(placed.user, size, 0)
            if not zero and self.meter is not None:
                # calloc zeroes natively; only patch-driven zeroing is
                # defense cost.
                self.meter.charge(
                    "defense", self.meter.model.zero_fill_per_byte * size)
            if vuln & VulnType.UNINIT_READ:
                self.enhanced_counts[VulnType.UNINIT_READ] += 1
        if vuln & VulnType.USE_AFTER_FREE:
            self.enhanced_counts[VulnType.USE_AFTER_FREE] += 1

        self.stats.record_alloc(fun, size)
        return placed.user

    # ------------------------------------------------------------------
    # Deallocation (Figure 7)
    # ------------------------------------------------------------------

    def _read_metadata(self, user: int) -> Tuple[BufferMetadata, int]:
        """Decode the metadata word; returns (metadata, user_size).

        For guarded buffers the guard page is made accessible first (the
        user size lives in its first word) — step (1) of Figure 7.
        """
        word = self.memory.read_word(user - METADATA_SIZE)
        metadata = BufferMetadata.decode(word)
        if metadata.has_guard:
            self.memory.mprotect(metadata.guard_page, PAGE_SIZE, PROT_RW)
            self._charge("defense", self.meter.model.mprotect
                         if self.meter else 0)
            user_size = self.memory.read_word(metadata.guard_page)
        else:
            user_size = metadata.user_size
        return metadata, user_size

    def free(self, address: int) -> None:
        if self.meter is not None:
            self._charge_interposition()
        if address == 0:
            return
        word = self._read_word(address - METADATA_SIZE)
        if not word & 0xF:
            # Fused un-patched fast path: vuln NONE + unaligned means no
            # guard page, no quarantine, align_log2 0 — the whole word
            # is ``user_size << 4``.  Free without decoding (Figure 7
            # collapses to its degenerate first row).
            self._record_free(word >> _METADATA_SIZE_SHIFT)
            self._underlying_free(address - METADATA_SIZE)
            return
        self._free_decoded(address)

    def _free_decoded(self, address: int) -> None:
        """The decoding free path (guard unseal, quarantine, Figure 7).

        Interposition must already have been charged; shared by
        :meth:`free` and :meth:`free_run` for buffers whose metadata word
        carries flags.
        """
        metadata, user_size = self._read_metadata(address)
        raw = buffer_start(address, metadata.aligned, metadata.alignment)
        if metadata.has_guard:
            region_size = metadata.guard_page + PAGE_SIZE - raw
        else:
            region_size = (address - raw) + user_size
        self.stats.record_free(user_size)
        if metadata.vuln & VulnType.USE_AFTER_FREE:
            self._charge("defense", self.meter.model.quarantine_op
                         if self.meter else 0)
            evictions = self.quarantine.push(
                FreedBlock(raw, region_size, None))
            for block in evictions:
                self.underlying.free(block.address)
        else:
            self.underlying.free(raw)

    def free_run(self, addresses: Sequence[int]) -> None:
        """Batched ``free``: observation-identical to per-call frees."""
        n = len(addresses)
        if n == 0:
            return
        meter = self.meter
        if meter is not None:
            model = meter.model
            meter.charge("interpose", model.interpose * n)
            meter.charge("metadata", model.metadata * n)
        live = [address for address in addresses if address]
        words = self.memory.read_word_gather(
            [address - METADATA_SIZE for address in live])
        if not any(word & 0xF for word in words):
            # All plain (the steady-state batch): release the whole run
            # in one batched underlying call.
            if live:
                self.underlying.free_run(
                    [address - METADATA_SIZE for address in live])
                self.stats.record_free_run(
                    [word >> _METADATA_SIZE_SHIFT for word in words])
            return
        raws: List[int] = []
        append_raw = raws.append
        usables: List[int] = []
        append_usable = usables.append
        for address, word in zip(live, words):
            if not word & 0xF:
                # Accumulate the whole fast-path run and release it in
                # one batched underlying call.  Reordering plain frees
                # after the decoding ones is unobservable: decoding
                # frees never touch a live buffer's metadata word, and
                # the underlying allocator sees the same multiset of
                # releases from this one call site.
                append_usable(word >> _METADATA_SIZE_SHIFT)
                append_raw(address - METADATA_SIZE)
            else:
                self._free_decoded(address)
        if raws:
            self.underlying.free_run(raws)
            self.stats.record_free_run(usables)

    # ------------------------------------------------------------------
    # Patch-table swap (read-mostly shared tables, copy-on-write)
    # ------------------------------------------------------------------

    def swap_table(self, table: PatchTable) -> None:
        """Atomically replace the patch table (copy-on-write swap).

        The serving controller distributes new tables while workers keep
        allocating.  Publication order makes every lookup see one
        internally consistent table version, old or new, never a mix:

        1. clear :attr:`_fused_malloc` — readers stop skipping lookups;
        2. publish the new frozen table;
        3. drop the per-function probe cache — stale maps derived from
           the old table are unreachable after this store (probes that
           raced step 2 cached into the *old* dict, which dies here);
        4. recompute the fused-malloc precondition against the new table.

        Live enhanced buffers keep the structures their allocation-time
        table gave them — their self-describing metadata words make frees
        correct under any table version (the paper's patches-as-
        configuration property).
        """
        if not table.frozen:
            raise ValueError("patch table must be frozen before use")
        self._fused_malloc = False
        self.table = table
        self._fun_patches = {}
        self._fused_malloc = (not self._patches_for("malloc")
                              and self._pure_ccid)

    # ------------------------------------------------------------------
    # Realloc & queries
    # ------------------------------------------------------------------

    def realloc(self, address: int, size: int) -> int:
        if address == 0:
            return self._allocate("realloc", size)
        if size == 0:
            self.free(address)
            return 0
        self._charge_interposition()
        _, old_size = self._read_metadata(address)
        new_user = self._allocate("realloc", size)
        keep = min(old_size, size)
        if keep:
            self.memory.write(new_user, self.memory.read(address, keep))
        self.free(address)
        return new_user

    def malloc_usable_size(self, address: int) -> int:
        if address == 0:
            return 0
        word = self.memory.read_word(address - METADATA_SIZE)
        metadata = BufferMetadata.decode(word)
        if not metadata.has_guard:
            return metadata.user_size
        # Reading the size requires briefly unsealing the guard page.
        self.memory.mprotect(metadata.guard_page, PAGE_SIZE, PROT_RW)
        user_size = self.memory.read_word(metadata.guard_page)
        self.memory.mprotect(metadata.guard_page, PAGE_SIZE, PROT_NONE)
        return user_size
