"""The Online Defense Generator (paper Section VI, Figures 5–7).

``DefendedAllocator`` is the reproduction of the ``LD_PRELOAD`` shared
library: it implements the public :class:`~repro.allocator.base.Allocator`
API, wraps *any* other allocator, and never touches that allocator's
internals — every piece of state it needs at ``free``/``realloc`` time is
self-maintained in the per-buffer metadata word (and, for guarded buffers,
the first word of the guard page).

Per allocation it does exactly what the paper describes:

1. read the current CCID from the encoding runtime (one register read),
2. look up ``(allocation function, CCID)`` in the read-only patch table —
   O(1),
3. lay the buffer out as Structure 1–4 and apply the matched enhancements:
   guard page (``mprotect``) against overflow, zero-fill against
   uninitialized read, deferred-free FIFO against use after free.

Unpatched buffers still pay interposition + metadata — that is the 4.3%
"zero patches" bar of Figure 8 — while enhancement cost is confined to
vulnerable contexts, which is the whole point of heap patches as
configuration.
"""

from __future__ import annotations

from typing import Optional, Tuple

from ..allocator.base import Allocator
from ..allocator.stats import AllocationStats
from ..common.fifo import FreedBlock, FreedBlockQueue
from ..machine.layout import PAGE_SIZE
from ..machine.memory import PROT_NONE, PROT_RW
from ..program.context import ContextSource, NullContextSource
from ..program.cost import CycleMeter
from ..vulntypes import VulnType
from .metadata import METADATA_SIZE, BufferMetadata
from .patch_table import PatchTable
from .structures import buffer_start, place_buffer, plan_request

#: Default byte quota of the online deferred-free queue (paper: 2 GB,
#: customizable; only patched buffers ever enter it).
DEFAULT_ONLINE_QUOTA = 2 * 1024 * 1024 * 1024


class DefendedAllocator(Allocator):
    """Allocation-API interposer enforcing heap patches.

    Args:
        underlying: the real allocator; only its public API is used.
        table: the frozen patch table.
        context_source: where CCIDs come from (the encoding runtime).
        meter: cycle meter for the overhead decomposition; optional.
        quarantine_quota: byte quota for the deferred-free queue.
    """

    def __init__(self, underlying: Allocator, table: PatchTable,
                 context_source: Optional[ContextSource] = None,
                 meter: Optional[CycleMeter] = None,
                 quarantine_quota: int = DEFAULT_ONLINE_QUOTA) -> None:
        if not table.frozen:
            raise ValueError("patch table must be frozen before use")
        self.underlying = underlying
        self.memory = underlying.memory
        self.table = table
        self.context_source = (context_source if context_source is not None
                               else NullContextSource())
        self.meter = meter
        self.quarantine = FreedBlockQueue(quarantine_quota)
        self.stats = AllocationStats()
        #: Buffers currently enhanced, by defense kind (for reports).
        self.enhanced_counts = {
            VulnType.OVERFLOW: 0,
            VulnType.USE_AFTER_FREE: 0,
            VulnType.UNINIT_READ: 0,
        }

    # ------------------------------------------------------------------
    # Cost helpers
    # ------------------------------------------------------------------

    def _charge(self, category: str, cycles: float) -> None:
        if self.meter is not None:
            self.meter.charge(category, cycles)

    def _charge_interposition(self) -> None:
        if self.meter is not None:
            model = self.meter.model
            self.meter.charge("interpose", model.interpose)
            self.meter.charge("metadata", model.metadata)

    # ------------------------------------------------------------------
    # Allocation family
    # ------------------------------------------------------------------

    def malloc(self, size: int) -> int:
        return self._allocate("malloc", size)

    def calloc(self, nmemb: int, size: int) -> int:
        return self._allocate("calloc", nmemb * size, zero=True)

    def memalign(self, alignment: int, size: int) -> int:
        return self._allocate("memalign", size, aligned=True,
                              alignment=alignment)

    def aligned_alloc(self, alignment: int, size: int) -> int:
        return self._allocate("aligned_alloc", size, aligned=True,
                              alignment=alignment)

    def posix_memalign(self, alignment: int, size: int) -> int:
        if alignment % 8:
            raise ValueError("posix_memalign: alignment must be a multiple "
                             "of sizeof(void*)")
        return self._allocate("posix_memalign", size, aligned=True,
                              alignment=alignment)

    def _allocate(self, fun: str, size: int, aligned: bool = False,
                  alignment: int = 0, zero: bool = False) -> int:
        self._charge_interposition()
        self._charge("lookup", self.meter.model.hash_lookup
                     if self.meter else 0)
        ccid = self.context_source.current_ccid()
        patch = self.table.lookup(fun, ccid)
        vuln = patch.vuln if patch is not None else VulnType.NONE

        plan = plan_request(vuln, aligned, alignment, size)
        if plan.request_alignment:
            raw = self.underlying.memalign(plan.request_alignment,
                                           plan.request_size)
        else:
            raw = self.underlying.malloc(plan.request_size)
        placed = place_buffer(plan, raw, size)

        metadata = BufferMetadata(
            vuln=vuln,
            aligned=aligned,
            align_log2=(plan.user_alignment.bit_length() - 1
                        if aligned else 0),
            guard_page=placed.guard,
            user_size=0 if placed.guard else size,
        )
        self.memory.write_word(placed.metadata_address, metadata.encode())

        if placed.guard:
            # User size lives in the guard page's first word, then the
            # page is sealed.
            self.memory.write_word(placed.guard, size)
            self.memory.mprotect(placed.guard, PAGE_SIZE, PROT_NONE)
            self._charge("defense", self.meter.model.mprotect
                         if self.meter else 0)
            self.enhanced_counts[VulnType.OVERFLOW] += 1
        if zero or (vuln & VulnType.UNINIT_READ):
            if size:
                self.memory.fill(placed.user, size, 0)
            if not zero and self.meter is not None:
                # calloc zeroes natively; only patch-driven zeroing is
                # defense cost.
                self.meter.charge(
                    "defense", self.meter.model.zero_fill_per_byte * size)
            if vuln & VulnType.UNINIT_READ:
                self.enhanced_counts[VulnType.UNINIT_READ] += 1
        if vuln & VulnType.USE_AFTER_FREE:
            self.enhanced_counts[VulnType.USE_AFTER_FREE] += 1

        self.stats.record_alloc(fun, size)
        return placed.user

    # ------------------------------------------------------------------
    # Deallocation (Figure 7)
    # ------------------------------------------------------------------

    def _read_metadata(self, user: int) -> Tuple[BufferMetadata, int]:
        """Decode the metadata word; returns (metadata, user_size).

        For guarded buffers the guard page is made accessible first (the
        user size lives in its first word) — step (1) of Figure 7.
        """
        word = self.memory.read_word(user - METADATA_SIZE)
        metadata = BufferMetadata.decode(word)
        if metadata.has_guard:
            self.memory.mprotect(metadata.guard_page, PAGE_SIZE, PROT_RW)
            self._charge("defense", self.meter.model.mprotect
                         if self.meter else 0)
            user_size = self.memory.read_word(metadata.guard_page)
        else:
            user_size = metadata.user_size
        return metadata, user_size

    def free(self, address: int) -> None:
        self._charge_interposition()
        if address == 0:
            return
        metadata, user_size = self._read_metadata(address)
        raw = buffer_start(address, metadata.aligned, metadata.alignment)
        if metadata.has_guard:
            region_size = metadata.guard_page + PAGE_SIZE - raw
        else:
            region_size = (address - raw) + user_size
        self.stats.record_free(user_size)
        if metadata.vuln & VulnType.USE_AFTER_FREE:
            self._charge("defense", self.meter.model.quarantine_op
                         if self.meter else 0)
            evictions = self.quarantine.push(
                FreedBlock(raw, region_size, None))
            for block in evictions:
                self.underlying.free(block.address)
        else:
            self.underlying.free(raw)

    # ------------------------------------------------------------------
    # Realloc & queries
    # ------------------------------------------------------------------

    def realloc(self, address: int, size: int) -> int:
        if address == 0:
            return self._allocate("realloc", size)
        if size == 0:
            self.free(address)
            return 0
        self._charge_interposition()
        _, old_size = self._read_metadata(address)
        new_user = self._allocate("realloc", size)
        keep = min(old_size, size)
        if keep:
            self.memory.write(new_user, self.memory.read(address, keep))
        self.free(address)
        return new_user

    def malloc_usable_size(self, address: int) -> int:
        if address == 0:
            return 0
        word = self.memory.read_word(address - METADATA_SIZE)
        metadata = BufferMetadata.decode(word)
        if not metadata.has_guard:
            return metadata.user_size
        # Reading the size requires briefly unsealing the guard page.
        self.memory.mprotect(metadata.guard_page, PAGE_SIZE, PROT_RW)
        user_size = self.memory.read_word(metadata.guard_page)
        self.memory.mprotect(metadata.guard_page, PAGE_SIZE, PROT_NONE)
        return user_size
