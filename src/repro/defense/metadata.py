"""The per-buffer metadata word (paper Figure 6).

Every buffer the online defense hands out is preceded by one 64-bit word
that makes ``free``/``realloc`` self-describing without any registry —
the defense never needs the underlying allocator's internals.

Bit layout (little-endian word, bit 0 = least significant):

========  =======================================================
bits      meaning
========  =======================================================
0..2      vulnerability type (OVERFLOW / USE_AFTER_FREE / UNINIT)
3         ALIGNED — buffer was allocated via the memalign family
4..39     *overflow buffers*: 36-bit guard-page frame number
          (48-bit address space, 4 KiB pages ⇒ 48 − 12 = 36 bits);
          the user-buffer size lives in the first word of the
          guard page instead
4..51     *non-overflow buffers*: 48-bit user-buffer size
52..57    log2(alignment), 6 bits (values 0..63; 0 = unaligned);
          for overflow buffers the field sits at bits 40..45
========  =======================================================

The two placements for log2(alignment) exist because the guard-frame and
size fields have different widths; both are 6 bits as the paper notes
("the alignment size is always a power of two ... we only need 6 bits").
"""

from __future__ import annotations

from dataclasses import dataclass

from ..machine.layout import PAGE_SHIFT
from ..vulntypes import VulnType

#: Width of the metadata word in bytes.
METADATA_SIZE = 8

_TYPE_MASK = 0b0111
_ALIGNED_BIT = 1 << 3
_GUARD_SHIFT = 4
_GUARD_MASK = (1 << 36) - 1
_SIZE_SHIFT = 4
_SIZE_MASK = (1 << 48) - 1
_ALIGN_SHIFT_OVERFLOW = 40
_ALIGN_SHIFT_PLAIN = 52
_ALIGN_MASK = (1 << 6) - 1


class MetadataError(ValueError):
    """Field out of range or inconsistent flag combination."""


@dataclass(frozen=True)
class BufferMetadata:
    """Decoded metadata word."""

    vuln: VulnType
    aligned: bool
    #: log2 of the alignment; 0 when unaligned.
    align_log2: int
    #: Guard-page base address (overflow buffers only), else 0.
    guard_page: int
    #: User buffer size (non-overflow buffers only), else 0 — for
    #: overflow buffers the size is read from the guard page's first word.
    user_size: int

    @property
    def has_guard(self) -> bool:
        """True when a guard page exists (overflow defense active)."""
        return bool(self.vuln & VulnType.OVERFLOW)

    @property
    def alignment(self) -> int:
        """The alignment in bytes (1 when unaligned)."""
        return 1 << self.align_log2

    def encode(self) -> int:
        """Pack into the 64-bit word."""
        word = int(self.vuln) & _TYPE_MASK
        if self.aligned:
            word |= _ALIGNED_BIT
        if not 0 <= self.align_log2 <= _ALIGN_MASK:
            raise MetadataError(f"align_log2 out of range: {self.align_log2}")
        if self.has_guard:
            frame = self.guard_page >> PAGE_SHIFT
            if self.guard_page & ((1 << PAGE_SHIFT) - 1):
                raise MetadataError(
                    f"guard page 0x{self.guard_page:x} not page aligned")
            if not 0 <= frame <= _GUARD_MASK:
                raise MetadataError(
                    f"guard frame out of range: 0x{frame:x}")
            word |= frame << _GUARD_SHIFT
            word |= self.align_log2 << _ALIGN_SHIFT_OVERFLOW
        else:
            if not 0 <= self.user_size <= _SIZE_MASK:
                raise MetadataError(
                    f"user size out of range: {self.user_size}")
            word |= self.user_size << _SIZE_SHIFT
            word |= self.align_log2 << _ALIGN_SHIFT_PLAIN
        return word

    @staticmethod
    def decode(word: int) -> "BufferMetadata":
        """Unpack a 64-bit metadata word."""
        vuln = VulnType(word & _TYPE_MASK)
        aligned = bool(word & _ALIGNED_BIT)
        if vuln & VulnType.OVERFLOW:
            guard_page = ((word >> _GUARD_SHIFT) & _GUARD_MASK) << PAGE_SHIFT
            align_log2 = (word >> _ALIGN_SHIFT_OVERFLOW) & _ALIGN_MASK
            user_size = 0
        else:
            guard_page = 0
            user_size = (word >> _SIZE_SHIFT) & _SIZE_MASK
            align_log2 = (word >> _ALIGN_SHIFT_PLAIN) & _ALIGN_MASK
        return BufferMetadata(vuln, aligned, align_log2, guard_page,
                              user_size)
