"""Buffer structures 1–4 (paper Figure 6, Table I).

The online defense lays every buffer out as one of four structures chosen
by two bits: *does the patch demand a guard page* (overflow defense) and
*was the allocation aligned* (memalign family):

=========  =========  ============================================
structure  aligned    contents, low address → high
=========  =========  ============================================
1          no         metadata word · user buffer
2          no         metadata word · user buffer · pad · guard page
3          yes        padding · metadata word · user buffer
4          yes        padding · metadata word · user buffer · pad ·
                      guard page
=========  =========  ============================================

Layout happens in two stages because only stage two knows real addresses:

* :func:`plan_request` — how much to request from the underlying
  allocator (and with what alignment) so everything fits;
* :func:`place_buffer` — given the raw address the underlying allocator
  returned, compute the user address, the page-aligned guard location and
  the total region extent.

The guard page is page-aligned by construction (``mprotect`` granularity)
and the user buffer ends flush against it apart from sub-word padding, so
a contiguous overflow touches the guard within at most a page.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..machine.layout import PAGE_SIZE, is_power_of_two, page_align_up
from ..vulntypes import VulnType
from .metadata import METADATA_SIZE

#: Minimum alignment the defense uses for the memalign family (the
#: metadata word must fit below the user address).
MIN_DEFENSE_ALIGNMENT = 16


class StructureError(ValueError):
    """Invalid layout request."""


@dataclass(frozen=True)
class RequestPlan:
    """What to ask the underlying allocator for."""

    structure: int
    #: Bytes to request.
    request_size: int
    #: Alignment to request via ``memalign`` (0 = plain ``malloc``).
    request_alignment: int
    #: The effective alignment of the user buffer (1 when unaligned).
    user_alignment: int


@dataclass(frozen=True)
class PlacedBuffer:
    """Concrete layout of one allocated buffer."""

    structure: int
    raw: int
    user: int
    user_size: int
    #: Base address of the guard page, or 0 when there is none.
    guard: int
    #: One past the last byte belonging to this buffer's region.
    region_end: int

    @property
    def metadata_address(self) -> int:
        """Where the metadata word lives."""
        return self.user - METADATA_SIZE

    @property
    def region_size(self) -> int:
        """Total footprint (for quarantine quota accounting)."""
        return self.region_end - self.raw


def structure_for(vuln: VulnType, aligned: bool) -> int:
    """Table I: pick the structure for a vulnerability mask."""
    wants_guard = bool(vuln & VulnType.OVERFLOW)
    if aligned:
        return 4 if wants_guard else 3
    return 2 if wants_guard else 1


def plan_request(vuln: VulnType, aligned: bool, alignment: int,
                 size: int) -> RequestPlan:
    """Stage one: the underlying-allocator request for this buffer."""
    if size < 0:
        raise StructureError(f"negative size {size}")
    structure = structure_for(vuln, aligned)
    wants_guard = structure in (2, 4)
    guard_slack = (PAGE_SIZE - 1) + PAGE_SIZE if wants_guard else 0
    if aligned:
        if alignment and not is_power_of_two(alignment):
            raise StructureError(
                f"alignment {alignment} is not a power of two")
        user_alignment = max(alignment, MIN_DEFENSE_ALIGNMENT)
        request = user_alignment + size + guard_slack
        return RequestPlan(structure, request, user_alignment,
                           user_alignment)
    request = METADATA_SIZE + size + guard_slack
    return RequestPlan(structure, request, 0, 1)


def place_buffer(plan: RequestPlan, raw: int, size: int) -> PlacedBuffer:
    """Stage two: concrete addresses once ``raw`` is known."""
    if plan.request_alignment:
        user = raw + plan.request_alignment
    else:
        user = raw + METADATA_SIZE
    if plan.structure in (2, 4):
        guard = page_align_up(user + size)
        region_end = guard + PAGE_SIZE
    else:
        guard = 0
        region_end = user + size
    return PlacedBuffer(plan.structure, raw, user, size, guard, region_end)


def buffer_start(user: int, aligned: bool, alignment: int) -> int:
    """Figure 7's ``pi``: the raw start given the user address.

    For plain buffers ``pi = p − sizeof(void*)``; for aligned buffers
    ``pi = p − A`` where ``A`` is the (defense-effective) alignment.
    """
    if aligned:
        return user - alignment
    return user - METADATA_SIZE
