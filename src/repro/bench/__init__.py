"""Performance-regression harness for the simulation substrate.

``python -m repro bench`` (or ``benchmarks/harness.py``) runs a fixed
suite of wall-clock microbenchmarks over the substrate — allocator
throughput, guest instruction rate, defended-vs-raw overhead, service
request throughput — and emits machine-readable ``BENCH_substrate.json``
and ``BENCH_services.json`` so every later PR can be compared against a
recorded trajectory (``--baseline`` fails the run on regressions).
"""

from .harness import (
    BenchResult,
    SuiteReport,
    compare_to_baseline,
    run_services_suite,
    run_substrate_suite,
)

__all__ = [
    "BenchResult",
    "SuiteReport",
    "compare_to_baseline",
    "run_services_suite",
    "run_substrate_suite",
]
