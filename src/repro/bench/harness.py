"""The perf-regression harness behind ``python -m repro bench``.

Every figure this reproduction reports is bottlenecked by the pure-Python
substrate, so the substrate's own speed is a first-class, *recorded*
quantity.  The harness runs a fixed suite of deterministic workloads,
times them with ``time.perf_counter`` (best of ``--repeat`` runs), and
writes two machine-readable files:

* ``BENCH_substrate.json`` — malloc/free throughput on both allocators,
  raw virtual-memory word traffic, guest instruction rate, and the
  defended-vs-raw interposition overhead;
* ``BENCH_services.json`` — request throughput of the nginx/mysql
  service harnesses, native and under the online defense, with both
  wall-clock and cycle-meter overhead percentages;
* ``BENCH_diagnosis.json`` — offline patch-factory throughput (attacks
  diagnosed per second) serial versus multi-process at jobs ∈ {1, 2, 4},
  plus the deterministic patch-table merge cost;
* ``BENCH_fuzz.json`` — differential-fuzzing throughput: generated
  cases pushed through the three-way oracle per second, serial and
  sharded over worker processes, plus the program-generation rate.

``--baseline FILE`` compares the fresh run against a previously recorded
file and fails (exit status 1) when any shared throughput metric
regressed by more than ``--max-regression`` percent (default 10).

The workloads are deterministic in *work performed* (op counts, request
mixes, allocation sequences); only the wall-clock denominator varies
between hosts, which is exactly what a regression gate needs.
"""

from __future__ import annotations

import json
import os
import platform
import sys
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Tuple

from ..allocator.base import Allocator
from ..allocator.libc import LibcAllocator
from ..allocator.segregated import SegregatedAllocator
from ..defense.interpose import DefendedAllocator
from ..defense.patch_table import PatchTable
from ..machine.layout import PAGE_SIZE
from ..machine.memory import VirtualMemory
from ..program.blocks import BasicBlock, BlockBuilder
from ..program.callgraph import CallGraph
from ..program.process import Process, ProgramLike

#: Version of the emitted JSON layout.
SCHEMA_VERSION = 1

#: Default regression gate for ``--baseline`` comparisons, in percent.
DEFAULT_MAX_REGRESSION_PCT = 10.0

#: Allocation-size mix for the malloc/free microbenchmarks: the small
#: sizes that dominate real workloads (Table IV's histograms), spread
#: over enough distinct bins to exercise free-list indexing.
ALLOC_SIZES: Tuple[int, ...] = (
    16, 24, 32, 48, 64, 96, 128, 192, 256, 384, 512, 768, 1024, 1536)


@dataclass
class BenchResult:
    """One timed benchmark: deterministic op count over wall seconds."""

    name: str
    ops: int
    seconds: float
    #: Derived quantities (overhead percentages, cycle totals, ...).
    extras: Dict[str, float] = field(default_factory=dict)

    @property
    def ops_per_sec(self) -> float:
        """Throughput; the quantity the regression gate compares."""
        return self.ops / self.seconds if self.seconds > 0 else 0.0

    def to_json(self) -> Dict[str, Any]:
        """Serializable payload for one benchmark entry."""
        payload: Dict[str, Any] = {
            "ops": self.ops,
            "seconds": round(self.seconds, 6),
            "ops_per_sec": round(self.ops_per_sec, 2),
        }
        if self.extras:
            payload["extras"] = {k: round(v, 4)
                                 for k, v in self.extras.items()}
        return payload


@dataclass
class SuiteReport:
    """All results of one suite plus run configuration."""

    suite: str
    scale: float
    repeat: int
    results: List[BenchResult]
    #: Suite-level context (e.g. host CPU count for parallel suites);
    #: the regression gate uses it to avoid cross-host comparisons.
    meta: Dict[str, Any] = field(default_factory=dict)

    def to_json(self) -> Dict[str, Any]:
        """The full ``BENCH_<suite>.json`` document (schema v1)."""
        doc: Dict[str, Any] = {
            "schema": SCHEMA_VERSION,
            "suite": self.suite,
            "scale": self.scale,
            "repeat": self.repeat,
            "python": platform.python_version(),
            "results": {r.name: r.to_json() for r in self.results},
        }
        if self.meta:
            doc["meta"] = self.meta
        return doc

    def result(self, name: str) -> BenchResult:
        """Look up one result by benchmark name (KeyError if absent)."""
        for r in self.results:
            if r.name == name:
                return r
        raise KeyError(name)


def _best_of(repeat: int, fn: Callable[[], int]) -> Tuple[int, float]:
    """Run ``fn`` ``repeat`` times; return (ops, best wall seconds).

    One *untimed* warmup iteration runs first: the first execution pays
    one-off costs (bytecode specialization, allocator bin population,
    page-frame materialization, import side effects) that a steady-state
    throughput number should not include.  ``repeat`` counts only the
    timed iterations.

    The cyclic garbage collector is paused around each timed run (the
    same hygiene ``timeit`` applies by default) — a collection landing
    inside one run would be noise, not workload cost.
    """
    import gc

    fn()  # warmup — populates caches, never timed
    best = float("inf")
    ops = 0
    gc_was_enabled = gc.isenabled()
    try:
        for _ in range(max(repeat, 1)):
            if gc_was_enabled:
                gc.collect()
                gc.disable()
            start = time.perf_counter()
            ops = fn()
            elapsed = time.perf_counter() - start
            if gc_was_enabled:
                gc.enable()
            if elapsed < best:
                best = elapsed
    finally:
        if gc_was_enabled and not gc.isenabled():
            gc.enable()
    return ops, best


# ----------------------------------------------------------------------
# Substrate microbenchmarks
# ----------------------------------------------------------------------

def _alloc_workout(allocator: Allocator, rounds: int) -> int:
    """Deterministic malloc/calloc/free churn; returns ops performed."""
    ops = 0
    sizes = ALLOC_SIZES
    for round_no in range(rounds):
        ptrs = [allocator.malloc(size) for size in sizes]
        ops += len(sizes)
        # Free every other buffer, then allocate shifted sizes so the
        # next fits land both on exact and on larger free-list bins.
        for ptr in ptrs[::2]:
            allocator.free(ptr)
        ops += len(ptrs[::2])
        refills = [allocator.malloc(size + 8) for size in sizes[::2]]
        ops += len(refills)
        zeroed = allocator.calloc(4, 32 + (round_no % 4) * 16)
        ops += 1
        for ptr in ptrs[1::2] + refills + [zeroed]:
            allocator.free(ptr)
        ops += len(ptrs[1::2]) + len(refills) + 1
    return ops


def bench_malloc_free(scale: float, repeat: int,
                      factory: Callable[[], Allocator] = LibcAllocator,
                      name: str = "malloc_free") -> BenchResult:
    """Raw allocator malloc/calloc/free churn over ``factory()``."""
    rounds = max(int(2000 * scale), 20)

    def run() -> int:
        return _alloc_workout(factory(), rounds)

    ops, seconds = _best_of(repeat, run)
    return BenchResult(name, ops, seconds)


def bench_defended_malloc_free(scale: float, repeat: int,
                               raw: BenchResult) -> BenchResult:
    """Same churn through the patch-less interposer; extras carry the
    overhead versus the ``raw`` (undefended) result."""
    rounds = max(int(2000 * scale), 20)

    def run() -> int:
        allocator = DefendedAllocator(LibcAllocator(), PatchTable.empty())
        return _alloc_workout(allocator, rounds)

    ops, seconds = _best_of(repeat, run)
    result = BenchResult("defended_malloc_free", ops, seconds)
    if raw.ops_per_sec > 0 and result.ops_per_sec > 0:
        result.extras["overhead_vs_raw_pct"] = (
            raw.ops_per_sec / result.ops_per_sec - 1) * 100
    return result


#: Words per bulk transfer in ``vm_word_ops`` (a cache-line-friendly
#: run length; allocator zero-fills and shadow sweeps move runs of this
#: order).
VM_WORD_BATCH = 64


def bench_vm_words(scale: float, repeat: int) -> BenchResult:
    """Bulk word traffic: ``read_words``/``write_words`` in 64-word runs.

    Ops = 64-bit words transferred.  This is the access shape the
    substrate's columnar page store is built for — per-page
    ``memoryview`` slice transfers with one permission check per span —
    and the shape allocator zero-fill, shadow sweeps and buffer copies
    actually generate.  The per-word scalar path keeps its own benchmark
    (``vm_word_ops_scalar``) so neither regresses unnoticed.
    """
    iters = max(int(6000 * scale), 100)

    def run() -> int:
        from array import array
        memory = VirtualMemory()
        base = memory.mmap(16 * PAGE_SIZE)
        span = 16 * PAGE_SIZE - VM_WORD_BATCH * 8
        batch = array("Q", range(VM_WORD_BATCH))
        write_words = memory.write_words
        read_words = memory.read_words
        for i in range(iters):
            address = base + (i * 520) % span
            write_words(address, batch)
            read_words(address, VM_WORD_BATCH)
        return 2 * VM_WORD_BATCH * iters

    ops, seconds = _best_of(repeat, run)
    return BenchResult("vm_word_ops", ops, seconds)


def bench_vm_words_scalar(scale: float, repeat: int) -> BenchResult:
    """Per-word ``read_word``/``write_word`` traffic (the TLB fast path)."""
    iters = max(int(60_000 * scale), 1000)

    def run() -> int:
        memory = VirtualMemory()
        base = memory.mmap(16 * PAGE_SIZE)
        span = 16 * PAGE_SIZE - 8
        write_word = memory.write_word
        read_word = memory.read_word
        for i in range(iters):
            address = base + (i * 24) % span
            write_word(address, i)
            read_word(address)
        return 2 * iters

    ops, seconds = _best_of(repeat, run)
    return BenchResult("vm_word_ops_scalar", ops, seconds)


class _GuestLoop(ProgramLike):
    """Synthetic guest: per iteration a call, an allocation, a
    straight-line run of memory traffic (clear the buffer, stamp a
    header, scan/branch, copy half the buffer forward), and a free —
    the instruction mix of the service workloads, reduced to a counted
    loop.

    The straight-line run between ``malloc`` and ``free`` is pre-decoded
    into one :class:`~repro.program.blocks.BasicBlock` per distinct
    buffer size and dispatched with ``exec_block`` — the
    batched-interpretation path this benchmark is meant to exercise (the
    per-instruction twin is held equivalent by
    ``tests/program/test_block_equivalence.py``).

    Guest instructions are counted at word granularity, exactly like
    :meth:`~repro.program.cost.CostModel.mem_cost` charges them: a
    ``size``-byte fill is ``size/8`` word stores, a copy is loads plus
    stores, even though the substrate executes each as one batched call
    (``BasicBlock.instructions`` is the per-block count).  ``call``,
    ``malloc`` and ``free`` count one instruction each."""

    def __init__(self) -> None:
        graph = CallGraph(entry="main")
        graph.add_call_site("main", "work")
        graph.add_call_site("work", "malloc", "buf")
        self.graph = graph.freeze()
        self._blocks = tuple(self._build_block(64 + k * 32)
                             for k in range(7))
        #: Instruction-rate numerator per iteration, by size class:
        #: call + malloc + free + the block's word-granular count.
        self._iter_instructions = tuple(
            3 + block.instructions for block in self._blocks)

    @staticmethod
    def _build_block(size: int) -> BasicBlock:
        builder = BlockBuilder()
        builder.fill(0, 0, size, 0)
        builder.write(0, 0, b"\x2a" * 16)
        builder.branch_on(builder.read(0, 0, 8))
        builder.write_arg(0, 8, 1)  # store loop counter at buf+8
        slot = builder.read_int(0, 8)
        builder.branch_on(slot)
        builder.copy(0, size // 2, 0, 0, size // 2)
        builder.write_value(0, 16, slot)
        builder.compute(5)
        return builder.build()

    def instruction_count(self, iters: int) -> int:
        """Exact guest instructions ``main(iters)`` executes."""
        per_cycle = sum(self._iter_instructions)
        full, rest = divmod(iters, len(self._iter_instructions))
        return full * per_cycle + sum(self._iter_instructions[:rest])

    def main(self, process: Process, iters: int) -> int:
        work = self._work
        for i in range(iters):
            process.call("work", work, i)
        return self.instruction_count(iters)

    def _work(self, process: Process, i: int) -> None:
        slot = i % 7
        buf = process.malloc(64 + slot * 32, site="buf")
        process.exec_block(self._blocks[slot], buf, i)
        process.free(buf)


def bench_guest_rate(scale: float, repeat: int) -> BenchResult:
    """Guest operations per second through the full Process machinery."""
    iters = max(int(6000 * scale), 100)
    program = _GuestLoop()

    def run() -> int:
        process = Process(program.graph, heap=LibcAllocator(),
                          record_allocations=False)
        return process.run(program, iters)

    ops, seconds = _best_of(repeat, run)
    return BenchResult("guest_instruction_rate", ops, seconds)


def run_substrate_suite(scale: float = 1.0, repeat: int = 3) -> SuiteReport:
    """The fixed substrate suite, slowest-changing names first."""
    raw = bench_malloc_free(scale, repeat)
    results = [
        raw,
        bench_malloc_free(scale, repeat, SegregatedAllocator,
                          "malloc_free_segregated"),
        bench_defended_malloc_free(scale, repeat, raw),
        bench_vm_words(scale, repeat),
        bench_vm_words_scalar(scale, repeat),
        bench_guest_rate(scale, repeat),
    ]
    return SuiteReport("substrate", scale, repeat, results)


class _GuestLoopPerOp(_GuestLoop):
    """The per-instruction twin of :class:`_GuestLoop`: every block is
    interpreted op by op through the ordinary ``Process`` methods."""

    def _work(self, process: Process, i: int) -> None:
        slot = i % 7
        buf = process.malloc(64 + slot * 32, site="buf")
        self._blocks[slot].interpret(process, (buf, i))
        process.free(buf)


def verify_substrate_equivalence(scale: float = 0.05) -> List[str]:
    """Cross-check the batched fast path against the slow validator.

    Runs the substrate guest-loop workload two ways — batched blocks on
    a default (fast-path) ``VirtualMemory`` versus per-op interpretation
    on ``VirtualMemory(fast_paths=False)`` — and compares every
    simulated observable: instruction count, per-category cycle totals,
    allocator statistics, the allocation profile, and the memory
    subsystem's fault/residency counters.  Returns a list of mismatch
    descriptions; empty means equivalent.  CI's perf-smoke job fails
    the build on any mismatch.
    """
    from ..machine.memory import VirtualMemory

    iters = max(int(3000 * scale), 50)

    def observe(program: _GuestLoop, fast_paths: bool) -> Dict[str, Any]:
        memory = VirtualMemory(fast_paths=fast_paths)
        heap = LibcAllocator(memory)
        process = Process(program.graph, heap=heap,
                          record_allocations=False)
        result = process.run(program, iters)
        return {
            "instructions": result,
            "meter": process.meter.snapshot(),
            "alloc_stats": heap.stats.snapshot(),
            "alloc_profile": dict(process.alloc_profile),
            "fault_count": memory.fault_count,
            "resident_pages": memory.resident_pages,
            "peak_resident_pages": memory.peak_resident_pages,
        }

    batched = observe(_GuestLoop(), fast_paths=True)
    validated = observe(_GuestLoopPerOp(), fast_paths=False)
    mismatches = []
    for key in batched:
        if batched[key] != validated[key]:
            mismatches.append(
                f"substrate equivalence: {key} diverged — batched "
                f"fast-path {batched[key]!r} != per-op validator "
                f"{validated[key]!r}")
    return mismatches


# ----------------------------------------------------------------------
# Service throughput
# ----------------------------------------------------------------------

def _bench_service(name: str, program_factory: Callable[[], Any],
                   run_args: Tuple[Any, ...], work_units: int,
                   repeat: int) -> BenchResult:
    from ..core.pipeline import HeapTherapy

    def run_native() -> int:
        system = HeapTherapy(program_factory())
        run = system.run_native(*run_args)
        run_native.cycles = run.meter.total  # type: ignore[attr-defined]
        return work_units

    def run_defended() -> int:
        system = HeapTherapy(program_factory())
        run = system.run_defended(PatchTable.empty(), *run_args)
        if run.blocked:
            raise RuntimeError(f"{name}: defended run blocked: {run.fault}")
        run_defended.cycles = run.meter.total  # type: ignore[attr-defined]
        return work_units

    ops, native_seconds = _best_of(repeat, run_native)
    _, defended_seconds = _best_of(repeat, run_defended)
    result = BenchResult(name, ops, native_seconds)
    result.extras["defended_seconds"] = defended_seconds
    if native_seconds > 0:
        result.extras["defended_ops_per_sec"] = ops / defended_seconds
        result.extras["wall_overhead_pct"] = (
            defended_seconds / native_seconds - 1) * 100
    native_cycles = getattr(run_native, "cycles", 0.0)
    defended_cycles = getattr(run_defended, "cycles", 0.0)
    if native_cycles:
        result.extras["cycle_overhead_pct"] = (
            defended_cycles / native_cycles - 1) * 100
    return result


def run_services_suite(scale: float = 1.0, repeat: int = 2) -> SuiteReport:
    """End-to-end service throughput, native versus defended."""
    from ..workloads.services import MySqlServer, NginxServer

    requests = max(int(400 * scale), 40)
    queries = max(int(2000 * scale), 200)
    results = [
        _bench_service("nginx_requests", NginxServer, (requests, 20),
                       requests, repeat),
        _bench_service("mysql_queries", MySqlServer, (queries,),
                       queries, repeat),
    ]
    return SuiteReport("services", scale, repeat, results)


# ----------------------------------------------------------------------
# Concurrent serving engine throughput
# ----------------------------------------------------------------------

#: Worker counts the serving scaling curve samples.
SERVING_WORKERS_SWEEP: Tuple[int, ...] = (1, 2, 4, 8)


def bench_serving_sequential(requests: int,
                             repeat: int) -> BenchResult:
    """The sequential baseline: the legacy per-op defended worker loop.

    Headline throughput is the *defended* requests/s (the quantity the
    engine entries are measured against); native timing and the cycle
    overhead ride along as extras.
    """
    from ..core.pipeline import HeapTherapy
    from ..workloads.services import NginxServer

    cycles: Dict[str, float] = {}

    def run_native() -> int:
        system = HeapTherapy(NginxServer())
        run = system.run_native(requests, SERVE_BENCH_CONCURRENCY)
        cycles["native"] = run.meter.total
        return requests

    def run_defended() -> int:
        system = HeapTherapy(NginxServer())
        run = system.run_defended(PatchTable.empty(), requests,
                                  SERVE_BENCH_CONCURRENCY)
        if run.blocked:
            raise RuntimeError(f"sequential serving blocked: {run.fault}")
        cycles["defended"] = run.meter.total
        return requests

    _, native_seconds = _best_of(repeat, run_native)
    ops, defended_seconds = _best_of(repeat, run_defended)
    result = BenchResult("serving_sequential", ops, defended_seconds)
    result.extras["native_seconds"] = native_seconds
    if native_seconds > 0:
        result.extras["native_ops_per_sec"] = ops / native_seconds
    result.extras["cycle_overhead_pct"] = (
        cycles["defended"] / cycles["native"] - 1) * 100
    return result


def bench_serving_engine(requests: int, batch_size: int, workers: int,
                         repeat: int,
                         sequential: BenchResult) -> BenchResult:
    """One point of the engine scaling curve: ``workers`` processes.

    Both runs reuse one preforked engine per configuration, so the
    steady-state dispatch rate is what lands in the record — fork cost
    is paid at pool creation, exactly as in nginx's master/worker model.
    Extras carry the worker count (the baseline gate skips multi-worker
    entries across hosts with different CPU counts), the cycle overhead
    and the speedup over the sequential baseline.
    """
    from ..serving import ServingEngine, ServingOptions

    cycles: Dict[str, float] = {}
    digests: Dict[str, str] = {}
    common = dict(service="nginx", workers=workers, requests=requests,
                  batch_size=batch_size)

    with ServingEngine(ServingOptions(defended=False,
                                      **common)) as native_engine, \
            ServingEngine(ServingOptions(defended=True,
                                         **common)) as defended_engine:
        def run_native() -> int:
            run = native_engine.serve()
            cycles["native"] = run.total_cycles
            return requests

        def run_defended() -> int:
            run = defended_engine.serve()
            if run.report["outcomes"].get("blocked"):
                raise RuntimeError("engine serving blocked")
            cycles["defended"] = run.total_cycles
            digests["defended"] = run.report["outcomes_digest"]
            return requests

        _, native_seconds = _best_of(repeat, run_native)
        ops, defended_seconds = _best_of(repeat, run_defended)
    result = BenchResult(f"serving_workers{workers}", ops,
                         defended_seconds)
    result.extras["workers"] = workers
    result.extras["native_seconds"] = native_seconds
    if native_seconds > 0:
        result.extras["native_ops_per_sec"] = ops / native_seconds
    result.extras["cycle_overhead_pct"] = (
        cycles["defended"] / cycles["native"] - 1) * 100
    if sequential.seconds > 0 and defended_seconds > 0:
        result.extras["speedup_vs_sequential"] = (
            sequential.seconds / defended_seconds)
    bench_serving_engine.last_digest = digests[  # type: ignore[attr-defined]
        "defended"]
    return result


#: Admission concurrency the serving benchmarks pass to the legacy loop.
SERVE_BENCH_CONCURRENCY = 20


def run_serving_suite(scale: float = 1.0, repeat: int = 2,
                      workers_sweep: Tuple[int, ...] =
                      SERVING_WORKERS_SWEEP) -> SuiteReport:
    """The serving scaling curve: sequential oracle vs engine workers.

    Every engine point must serve byte-identical outcomes (the engine's
    determinism contract) — a digest mismatch across worker counts fails
    the suite rather than recording an apples-to-oranges curve.  Batch
    size is sized so the largest worker count still gets one batch per
    worker.  ``meta.cpus`` records the host parallelism; the baseline
    gate skips multi-worker entries across differing hosts.
    """
    requests = max(int(32000 * scale), 800)
    batch_size = max(requests // max(workers_sweep), 50)
    sequential = bench_serving_sequential(requests, repeat)
    results = [sequential]
    digests: Dict[int, str] = {}
    for workers in workers_sweep:
        results.append(bench_serving_engine(requests, batch_size,
                                            workers, repeat, sequential))
        digests[workers] = (
            bench_serving_engine.last_digest)  # type: ignore[attr-defined]
    if len(set(digests.values())) > 1:
        raise RuntimeError(
            f"serving outcomes diverged across worker counts: {digests}")
    return SuiteReport("serving", scale, repeat, results,
                       meta={"cpus": os.cpu_count() or 1})


# ----------------------------------------------------------------------
# Offline diagnosis throughput (the parallel patch factory)
# ----------------------------------------------------------------------

#: Worker counts the diagnosis scaling curve samples.
DIAGNOSIS_JOBS_SWEEP: Tuple[int, ...] = (1, 2, 4)


def bench_diagnosis(scale: float, repeat: int, jobs: int,
                    baseline: Optional[BenchResult] = None
                    ) -> Tuple[BenchResult, Any]:
    """Diagnose the Table II + SAMATE corpus with ``jobs`` workers.

    Ops = attack reports diagnosed.  ``extras`` carry the worker count
    and, given the ``jobs=1`` result, the parallel speedup — the
    quantity the scaling curve is about.  Returns the result plus the
    last :class:`~repro.parallel.result.CorpusDiagnosis` (the merge
    benchmark reuses its per-entry results).
    """
    from ..parallel import DiagnosisPool
    from ..workloads.corpus import default_corpus

    replicate = max(int(16 * scale), 1)
    corpus = default_corpus().replicated(replicate)
    pool = DiagnosisPool(jobs=jobs)
    captured: List[Any] = [None]

    def run() -> int:
        diagnosis = pool.diagnose(corpus)
        captured[0] = diagnosis
        return len(diagnosis.results)

    ops, seconds = _best_of(repeat, run)
    result = BenchResult(f"diagnosis_jobs{jobs}", ops, seconds)
    result.extras["jobs"] = jobs
    if baseline is not None and baseline.ops_per_sec > 0:
        result.extras["speedup_vs_jobs1"] = (
            result.ops_per_sec / baseline.ops_per_sec)
    return result, captured[0]


def bench_diagnosis_merge(repeat: int, diagnosis: Any) -> BenchResult:
    """Cost of the deterministic patch-table merge, isolated.

    Merges the per-entry results of a finished diagnosis over and over;
    ops = diagnosis results merged.  This is the only serial section of
    the parallel factory, so its cost bounds the achievable speedup
    (Amdahl).
    """
    from ..parallel.engine import DiagnosisPool

    results = diagnosis.results
    iters = max(200 // max(len(results), 1), 1) * 10

    def run() -> int:
        for _ in range(iters):
            DiagnosisPool._merge(results)
        return iters * len(results)

    ops, seconds = _best_of(repeat, run)
    return BenchResult("diagnosis_merge", ops, seconds)


def run_diagnosis_suite(scale: float = 1.0, repeat: int = 3,
                        jobs_sweep: Tuple[int, ...] = DIAGNOSIS_JOBS_SWEEP
                        ) -> SuiteReport:
    """Serial-vs-parallel diagnosis scaling curve + merge cost.

    The suite records the host CPU count in ``meta`` — parallel
    throughput is only comparable between runs on equally sized hosts,
    and the regression gate skips multi-worker entries otherwise.
    """
    import os

    results: List[BenchResult] = []
    serial: Optional[BenchResult] = None
    diagnosis: Any = None
    for jobs in jobs_sweep:
        result, last = bench_diagnosis(scale, repeat, jobs, serial)
        if serial is None:
            serial = result
            diagnosis = last
        results.append(result)
    results.append(bench_diagnosis_merge(repeat, diagnosis))
    return SuiteReport("diagnosis", scale, repeat, results,
                       meta={"cpus": os.cpu_count() or 1})


# ----------------------------------------------------------------------
# Differential-fuzzing throughput
# ----------------------------------------------------------------------

#: Worker counts the fuzz scaling curve samples.
FUZZ_JOBS_SWEEP: Tuple[int, ...] = (1, 2)


def bench_fuzz_generation(scale: float, repeat: int) -> BenchResult:
    """Spec + program generation rate, isolated from the oracle."""
    from ..fuzz.generator import build_program, spec_for_seed

    count = max(int(400 * scale), 20)

    def run() -> int:
        for seed in range(count):
            build_program(spec_for_seed(seed))
        return count

    ops, seconds = _best_of(repeat, run)
    return BenchResult("fuzz_generation", ops, seconds)


def bench_fuzz_campaign(scale: float, repeat: int, jobs: int,
                        baseline: Optional[BenchResult] = None
                        ) -> BenchResult:
    """Full three-way-oracle case throughput with ``jobs`` workers.

    Ops = generated cases evaluated (each case is six executions plus
    two offline replays).  The campaign must report zero failures —
    a failing oracle would silently bench the error path instead.
    """
    from ..fuzz.runner import run_campaign

    count = max(int(40 * scale), 6)

    def run() -> int:
        campaign = run_campaign(0, count, jobs=jobs)
        if not campaign.ok:
            raise RuntimeError(
                f"fuzz bench: {len(campaign.failures)} oracle "
                f"failure(s); not benchmarking a broken oracle")
        return count

    ops, seconds = _best_of(repeat, run)
    result = BenchResult(f"fuzz_jobs{jobs}", ops, seconds)
    result.extras["jobs"] = jobs
    if baseline is not None and baseline.ops_per_sec > 0:
        result.extras["speedup_vs_jobs1"] = (
            result.ops_per_sec / baseline.ops_per_sec)
    return result


def run_fuzz_suite(scale: float = 1.0, repeat: int = 2,
                   jobs_sweep: Tuple[int, ...] = FUZZ_JOBS_SWEEP
                   ) -> SuiteReport:
    """Differential-fuzzing throughput, serial versus sharded.

    Like the diagnosis suite, multi-worker entries carry a ``jobs``
    extra and the report records the host CPU count in ``meta`` so the
    regression gate skips cross-host comparisons.
    """
    import os

    results: List[BenchResult] = [bench_fuzz_generation(scale, repeat)]
    serial: Optional[BenchResult] = None
    for jobs in jobs_sweep:
        result = bench_fuzz_campaign(scale, repeat, jobs, serial)
        if serial is None:
            serial = result
        results.append(result)
    return SuiteReport("fuzz", scale, repeat, results,
                       meta={"cpus": os.cpu_count() or 1})


# ----------------------------------------------------------------------
# Static layout-analysis throughput
# ----------------------------------------------------------------------

def bench_layout_workloads(repeat: int) -> BenchResult:
    """Layout-graph rate over the builtin Table II + SAMATE corpus."""
    from ..analysis.layout import analyze_layout
    from ..workloads.vulnerable import workload_registry

    programs = [factory() for factory in workload_registry().values()]

    def run() -> int:
        for program in programs:
            analyze_layout(program)
        return len(programs)

    ops, seconds = _best_of(repeat, run)
    return BenchResult("layout_workloads", ops, seconds)


def bench_layout_generated(scale: float, repeat: int) -> BenchResult:
    """Layout-graph rate over seed-generated fuzz programs.

    Ops = programs analyzed end to end (generation included — it is a
    small constant fraction; see ``fuzz_generation`` for its isolated
    rate).
    """
    from ..analysis.layout import analyze_layout
    from ..fuzz.generator import build_program, spec_for_seed

    count = max(int(120 * scale), 10)

    def run() -> int:
        for seed in range(count):
            analyze_layout(build_program(spec_for_seed(seed)))
        return count

    ops, seconds = _best_of(repeat, run)
    return BenchResult("layout_generated", ops, seconds)


def run_layout_suite(scale: float = 1.0, repeat: int = 3) -> SuiteReport:
    """Static heap-layout analysis throughput (graphs/s)."""
    results = [bench_layout_workloads(repeat),
               bench_layout_generated(scale, repeat)]
    return SuiteReport("layout", scale, repeat, results)


# ----------------------------------------------------------------------
# Symbolic attack synthesis throughput
# ----------------------------------------------------------------------

def bench_synth(scale: float, repeat: int) -> BenchResult:
    """End-to-end synthesis rate: layout plans attempted per second.

    One op = one fuzz-validated layout plan taken through the full
    pipeline (symbolic solve, allocator-geometry simulation, native
    validation, diagnose-and-rerun defeat check).  Extras record the
    funnel — concretized / abstentions / validated / defeated — so a
    regression in *effectiveness* is visible next to one in throughput.
    """
    from ..synth import synthesize_range

    count = max(int(24 * scale), 6)

    funnel: Dict[str, float] = {}

    def run() -> int:
        report = synthesize_range(0, count, jobs=1)
        funnel["seeds"] = float(report.seeds)
        funnel["concretized"] = float(report.concretized)
        funnel["abstentions"] = float(report.abstentions)
        funnel["validated"] = float(report.validated)
        funnel["defeated"] = float(report.defeated)
        return max(report.plans_attempted, 1)

    ops, seconds = _best_of(repeat, run)
    result = BenchResult("synth_plans", ops, seconds)
    result.extras.update(funnel)
    return result


def run_synth_suite(scale: float = 1.0, repeat: int = 2) -> SuiteReport:
    """Symbolic attack-synthesis throughput (plans/s) and funnel."""
    return SuiteReport("synth", scale, repeat,
                       [bench_synth(scale, repeat)])


# ----------------------------------------------------------------------
# Fleet immunization (registry publish → verify → hot-swap at scale)
# ----------------------------------------------------------------------

#: Fleet sizes the immunization curve samples.
FLEET_SIZES: Tuple[int, ...] = (1, 2, 4, 8)


def bench_fleet(scale: float, repeat: int, instances: int) -> BenchResult:
    """One fleet immunization run at ``instances`` serving instances.

    Ops = requests served *after* the hot-swap across the fleet (the
    immunized capacity).  Extras record the observability the issue
    asks for: per-run fleet immunization time (first observed attack at
    instance 0 to the last instance's proven immunity) and the
    min/mean/max per-instance swap latency, all from monotone
    ``BatchResult.wall`` stamps.  The canonical fleet report is checked
    for full immunity — a fleet that fails to immunize fails the suite
    rather than recording a meaningless number.
    """
    from ..fleet import FleetOptions, run_fleet

    requests = max(int(96 * scale), 48)
    options = FleetOptions(service="nginx", instances=instances,
                           attacks=4, requests=requests, batch_size=8,
                           jobs=1)
    extras: Dict[str, float] = {}

    def run() -> int:
        fleet = run_fleet(options)
        if not fleet.immune:
            raise RuntimeError(
                f"fleet of {instances} failed to immunize: "
                f"{fleet.report['immune_instances']} of {instances} "
                f"instances immune")
        post_swap = 0
        for inst in fleet.report["instance_reports"]:
            new_version = max(inst["table_versions"])
            post_swap += sum(
                count for version, _, count in inst["version_outcomes"]
                if version == new_version)
        latencies = fleet.telemetry["swap_latency"]
        extras["instances"] = float(instances)
        extras["registry_version"] = float(fleet.snapshot.version)
        extras["immunization_seconds"] = (
            fleet.telemetry["immunization_seconds"])
        extras["swap_latency_min_ms"] = min(latencies) * 1e3
        extras["swap_latency_max_ms"] = max(latencies) * 1e3
        extras["swap_latency_mean_ms"] = (
            sum(latencies) / len(latencies) * 1e3)
        return post_swap

    ops, seconds = _best_of(repeat, run)
    result = BenchResult(f"fleet_instances{instances}", ops, seconds)
    result.extras.update(extras)
    return result


def run_fleet_suite(scale: float = 1.0, repeat: int = 2,
                    sizes: Tuple[int, ...] = FLEET_SIZES) -> SuiteReport:
    """The fleet immunization curve: post-swap capacity over fleet size.

    ``meta.cpus`` records host parallelism for the cross-host baseline
    skip, mirroring the serving and diagnosis scaling curves (the runs
    themselves use ``jobs=1`` so the per-instance numbers stay
    comparable; fleet parallelism is exercised by the tests).
    """
    results = [bench_fleet(scale, repeat, instances)
               for instances in sizes]
    return SuiteReport("fleet", scale, repeat, results,
                       meta={"cpus": os.cpu_count() or 1})


# ----------------------------------------------------------------------
# Baseline comparison
# ----------------------------------------------------------------------

def compare_to_baseline(report: SuiteReport, baseline: Dict[str, Any],
                        max_regression_pct: float =
                        DEFAULT_MAX_REGRESSION_PCT
                        ) -> List[str]:
    """Return regression messages; empty means the gate passes.

    Only throughput metrics (``ops_per_sec``) present in both runs are
    compared; new or removed benchmarks never fail the gate.  Results
    carrying a ``jobs`` or ``workers`` extra above 1 (the diagnosis and
    serving scaling curves) are additionally skipped when the baseline
    was recorded on a host with a different CPU count — multi-worker
    throughput is a property of the host's parallelism, not of the code
    under test.
    """
    failures: List[str] = []
    base_results = baseline.get("results", {})
    base_cpus = baseline.get("meta", {}).get("cpus")
    run_cpus = report.meta.get("cpus")
    for result in report.results:
        base = base_results.get(result.name)
        if not base:
            continue
        if base_cpus != run_cpus and (result.extras.get("jobs", 1) > 1
                                      or result.extras.get("workers",
                                                           1) > 1):
            continue
        base_rate = float(base.get("ops_per_sec", 0))
        if base_rate <= 0 or result.ops_per_sec <= 0:
            continue
        regression_pct = (base_rate / result.ops_per_sec - 1) * 100
        if regression_pct > max_regression_pct:
            failures.append(
                f"{result.name}: {result.ops_per_sec:,.0f} ops/s is "
                f"{regression_pct:.1f}% below baseline "
                f"{base_rate:,.0f} ops/s "
                f"(gate: {max_regression_pct:.0f}%)")
    return failures


# ----------------------------------------------------------------------
# Entry points
# ----------------------------------------------------------------------

def _load_baselines(baseline: str) -> Dict[str, Dict[str, Any]]:
    """Load baseline documents, keyed by suite name.

    ``baseline`` may be one ``BENCH_<suite>.json`` file (the historical
    form) or a *directory* — every ``BENCH_*.json`` inside is loaded, so
    one ``--baseline benchmarks/results`` gates all suites at once.
    """
    path = Path(baseline)
    docs: Dict[str, Dict[str, Any]] = {}
    files = (sorted(path.glob("BENCH_*.json")) if path.is_dir()
             else [path])
    for file in files:
        doc = json.loads(file.read_text())
        suite = doc.get("suite")
        if suite:
            docs[suite] = doc
    return docs


def _emit(report: SuiteReport, out_dir: Path) -> Path:
    path = out_dir / f"BENCH_{report.suite}.json"
    path.write_text(json.dumps(report.to_json(), indent=2,
                               sort_keys=True) + "\n")
    return path


def _render(report: SuiteReport) -> str:
    lines = [f"suite: {report.suite} (scale={report.scale}, "
             f"repeat={report.repeat})"]
    for result in report.results:
        lines.append(f"  {result.name:<26} {result.ops_per_sec:>14,.0f} "
                     f"ops/s  ({result.ops} ops in "
                     f"{result.seconds:.3f}s)")
        for key, value in sorted(result.extras.items()):
            lines.append(f"    {key:<28} {value:,.2f}")
    return "\n".join(lines)


#: Stack frames listed in each ``profile_<suite>.txt`` artifact.
PROFILE_TOP_N = 40


def _profiled(suite: str, runner: Any, out: Path) -> SuiteReport:
    """Run one suite under :mod:`cProfile`; write the hot-spot table.

    The artifact (``profile_<suite>.txt``) lists the top
    ``PROFILE_TOP_N`` frames by cumulative time — the map optimization
    work starts from.  Profiling slows the run, so throughput numbers
    recorded from a ``--profile`` run are for reading tables, not for
    ratcheting baselines.
    """
    import cProfile
    import io
    import pstats

    profiler = cProfile.Profile()
    profiler.enable()
    try:
        report = runner()
    finally:
        profiler.disable()
    buffer = io.StringIO()
    stats = pstats.Stats(profiler, stream=buffer)
    stats.sort_stats("cumulative").print_stats(PROFILE_TOP_N)
    stats.sort_stats("tottime").print_stats(PROFILE_TOP_N)
    path = out / f"profile_{suite}.txt"
    path.write_text(buffer.getvalue())
    print(f"wrote {path}")
    return report


def run_bench(suites: str = "all", scale: float = 1.0, repeat: int = 3,
              out_dir: Optional[str] = None,
              baseline: Optional[str] = None,
              max_regression_pct: float = DEFAULT_MAX_REGRESSION_PCT,
              profile: bool = False,
              verify_equivalence: bool = False) -> int:
    """Run the requested suites; returns the process exit status."""
    out = Path(out_dir) if out_dir else Path.cwd()
    out.mkdir(parents=True, exist_ok=True)
    if verify_equivalence:
        mismatches = verify_substrate_equivalence(scale)
        if mismatches:
            print("\nBATCHED/VALIDATOR DIVERGENCE:", file=sys.stderr)
            for mismatch in mismatches:
                print(f"  {mismatch}", file=sys.stderr)
            return 1
        print("batched execution == fast_paths=False validator "
              "(substrate smoke workload)")
    runners = [
        ("substrate", lambda: run_substrate_suite(scale, repeat)),
        ("services", lambda: run_services_suite(scale,
                                                max(repeat - 1, 1))),
        ("serving", lambda: run_serving_suite(scale,
                                              max(repeat - 1, 1))),
        ("diagnosis", lambda: run_diagnosis_suite(scale, repeat)),
        ("fuzz", lambda: run_fuzz_suite(scale, max(repeat - 1, 1))),
        ("layout", lambda: run_layout_suite(scale, repeat)),
        ("synth", lambda: run_synth_suite(scale, max(repeat - 1, 1))),
        ("fleet", lambda: run_fleet_suite(scale, max(repeat - 1, 1))),
    ]
    reports: List[SuiteReport] = []
    for name, runner in runners:
        if suites not in ("all", name):
            continue
        reports.append(_profiled(name, runner, out) if profile
                       else runner())

    failures: List[str] = []
    baseline_docs = _load_baselines(baseline) if baseline else {}
    for report in reports:
        path = _emit(report, out)
        print(_render(report))
        print(f"wrote {path}")
        baseline_data = baseline_docs.get(report.suite)
        if baseline_data:
            base_scale = baseline_data.get("scale")
            if base_scale is not None and base_scale != report.scale:
                print(f"baseline scale {base_scale} != run scale "
                      f"{report.scale}; skipping regression gate "
                      f"(throughput is only comparable at equal scale)",
                      file=sys.stderr)
            else:
                failures.extend(compare_to_baseline(report, baseline_data,
                                                    max_regression_pct))
    if failures:
        print("\nPERF REGRESSION:", file=sys.stderr)
        for failure in failures:
            print(f"  {failure}", file=sys.stderr)
        return 1
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """Standalone entry point (``benchmarks/harness.py``)."""
    import argparse

    parser = argparse.ArgumentParser(
        description="substrate/service perf-regression harness")
    add_bench_arguments(parser)
    args = parser.parse_args(argv)
    return run_bench(suites=args.suite, scale=args.scale,
                     repeat=args.repeat, out_dir=args.out_dir,
                     baseline=args.baseline,
                     max_regression_pct=args.max_regression,
                     profile=args.profile,
                     verify_equivalence=args.verify_equivalence)


def add_bench_arguments(parser: Any) -> None:
    """Shared flag definitions for the CLI subcommand and the script."""
    parser.add_argument("--suite", default="all",
                        choices=("all", "substrate", "services",
                                 "serving", "diagnosis", "fuzz", "layout",
                                 "synth", "fleet"),
                        help="which suite to run")
    parser.add_argument("--scale", type=float, default=1.0,
                        help="workload scale factor (CI smoke: 0.05)")
    parser.add_argument("--repeat", type=int, default=3,
                        help="timing repeats; best run is recorded")
    parser.add_argument("--out-dir", default=None,
                        help="where BENCH_*.json land (default: cwd)")
    parser.add_argument("--baseline", default=None,
                        help="previously recorded BENCH_*.json (or a "
                             "directory of them) to compare against")
    parser.add_argument("--max-regression", type=float,
                        default=DEFAULT_MAX_REGRESSION_PCT,
                        help="percent throughput loss that fails the "
                             "run (default 10)")
    parser.add_argument("--profile", action="store_true",
                        help="run each suite under cProfile and write "
                             "profile_<suite>.txt next to the JSON "
                             "artifacts (numbers from profiled runs "
                             "are not baseline material)")
    parser.add_argument("--verify-equivalence", action="store_true",
                        help="before timing anything, run the substrate "
                             "guest workload batched (fast paths on) and "
                             "per-op (fast_paths=False validator) and "
                             "fail if any simulated observable differs")


if __name__ == "__main__":  # pragma: no cover - exercised as a script
    sys.exit(main())
