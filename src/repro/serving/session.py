"""Per-worker serving session: one batch, one private CCE state.

The paper's calling-context encoding is thread-local by design — every
thread owns its V register.  The serving engine reproduces that
ownership structurally: each batch is served by a fresh
:class:`ServingSession` holding its *own* encoding runtime, allocator,
meter and :class:`~repro.program.process.Process`.  Nothing mutable is
shared between workers, so per-worker CCIDs are computed by the same
codec over the same frames as a sequential run — the cross-worker
equivalence the tests pin down to byte-identical reports.

Fault isolation: a batch is split into *rounds* around attack tokens
(:func:`~repro.serving.services.split_rounds`).  Each round is one
``serve_main`` run; a guard-page fault in an attack round unwinds that
run (frames and encoding state rebalance through the call protocol's
``finally`` blocks) and is recorded as a ``blocked`` outcome — the
session keeps serving the remaining rounds, mirroring a supervised
worker process being restarted after a crash-stopped exploit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from ..allocator.base import Allocator
from ..allocator.libc import LibcAllocator
from ..allocator.segregated import SegregatedAllocator
from ..ccencoding.base import Codec
from ..ccencoding.runtime import EncodingRuntime
from ..defense.interpose import DEFAULT_ONLINE_QUOTA, DefendedAllocator
from ..defense.patch_table import PatchTable
from ..machine.errors import SegmentationFault
from ..program.cost import CycleMeter
from ..program.monitor import DirectMonitor
from ..program.process import Process
from ..program.program import Program

#: Underlying allocators the serving engine can deploy over (the defense
#: is allocator-transparent — paper property 5).  Segregated storage is
#: the default: slab reuse suits a request loop's fixed size classes.
ALLOCATORS = ("segregated", "libc")


#: Freed dedicated mappings a serving allocator may retain for reuse.
#: Large response bodies (8–16 KiB documents) otherwise cost an
#: ``mmap``/``munmap`` round trip per request; real server allocators
#: cache such spans (tcmalloc's span cache), and the serving engine
#: models that.  Identical for the ``workers=1`` oracle and ``workers=N``
#: runs, so report equivalence is unaffected.
MAP_CACHE_MAPPINGS = 256


def make_allocator(name: str, map_cache: int = 0) -> Allocator:
    """Construct a fresh underlying allocator by registry name."""
    if name == "segregated":
        return SegregatedAllocator(map_cache=map_cache)
    if name == "libc":
        return LibcAllocator()
    raise ValueError(f"unknown allocator {name!r}; choose from "
                     f"{', '.join(ALLOCATORS)}")


@dataclass(frozen=True)
class BatchResult:
    """Plain-data outcome of one served batch (picklable)."""

    index: int
    #: Per-request ``(status, sent_bytes)`` outcomes, in request order.
    outcomes: Tuple[Tuple[str, int], ...]
    served: int
    bytes_sent: int
    #: Sorted per-category cycle totals of the batch's meter.
    cycles: Tuple[Tuple[str, float], ...]
    #: Sorted ``((fun, ccid), count)`` allocation profile of the batch.
    profile: Tuple[Tuple[Tuple[str, int], int], ...]
    #: The patch-table version this batch was admitted under.
    table_version: int
    #: ``time.monotonic()`` at batch completion — wall-clock telemetry
    #: for the fleet's swap-latency samples.  Comparable across forked
    #: worker processes (CLOCK_MONOTONIC is system-wide) and strictly
    #: excluded from the canonical report, which stays timing-free.
    wall: float = 0.0


class _ServeEntry:
    """Adapter giving ``Process.run`` a ``main`` for ``serve_main``."""

    __slots__ = ("_serve",)

    def __init__(self, serve: Any) -> None:
        self._serve = serve

    def main(self, process: Process, requests: List[Any]) -> Dict[str, Any]:
        return self._serve(process, requests)


class ServingSession:
    """One worker's state for serving one batch."""

    def __init__(self, program: Program, codec: Codec, *,
                 defended: bool = True,
                 table: Optional[PatchTable] = None,
                 allocator: str = "segregated",
                 quarantine_quota: int = DEFAULT_ONLINE_QUOTA) -> None:
        self.program = program
        self.meter = CycleMeter()
        underlying = make_allocator(allocator,
                                    map_cache=MAP_CACHE_MAPPINGS)
        runtime = EncodingRuntime(codec, self.meter)
        self.runtime = runtime
        if defended:
            heap: Allocator = DefendedAllocator(
                underlying, table if table is not None else
                PatchTable.empty(), context_source=runtime,
                meter=self.meter, quarantine_quota=quarantine_quota)
        else:
            heap = underlying
        self.heap = heap
        monitor = DirectMonitor(underlying.memory, heap, self.meter)
        self.process = Process(program.graph, monitor=monitor,
                               context_source=runtime, meter=self.meter,
                               record_allocations=False, track_live=False)
        self._entry = _ServeEntry(program.serve_main)  # type: ignore[attr-defined]

    def serve_rounds(self, rounds: List[List[Any]]
                     ) -> Tuple[List[Tuple[str, int]], int, int]:
        """Serve every round; returns (outcomes, served, bytes_sent)."""
        outcomes: List[Tuple[str, int]] = []
        served = 0
        bytes_sent = 0
        for round_requests in rounds:
            try:
                result = self.process.run(self._entry, round_requests)
            except SegmentationFault:
                # Guard page stopped the exploited request; the round is
                # a singleton by construction (split_rounds), so exactly
                # this request is lost.
                outcomes.append(("blocked", 0))
                served += len(round_requests)
                continue
            outcomes.extend(result["outcomes"])
            served += result["served"]
            bytes_sent += result["bytes_sent"]
        return outcomes, served, bytes_sent
