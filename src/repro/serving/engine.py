"""The multi-worker serving engine (concurrent request dispatch).

``ServingEngine`` drives thousands of simulated connections through the
defended allocator:

* **Admission & batching** — the deterministic request stream is chunked
  into fixed-size batches; every batch is stamped at admission with the
  patch-table version current on the controller's
  :class:`~repro.serving.handle.PatchTableHandle`.  Copy-on-write swaps
  therefore take effect at the next batch boundary for every worker at
  once — no worker can serve one batch under two table versions.
* **Dispatch** — batches feed ``N`` worker processes over a preforked
  ``ProcessPoolExecutor`` as each worker drains, with admission
  backpressure: at most ``min(workers, host CPUs)`` batches are in
  flight at once, so an oversubscribed host never pays for cache
  thrash between more CPU-bound batches than it can run.  The
  instrumented program
  plan — program, deployed codec, every published table text — ships
  once through the pool initializer; per-batch messages carry only the
  batch index, mirroring :class:`~repro.parallel.engine.DiagnosisPool`.
  With ``shared_pages`` the workers draw page frames from a
  shared-memory arena (:mod:`repro.machine.pagestore`) instead of
  private buffers.
* **Per-worker CCE state** — each batch is served by a fresh
  :class:`~repro.serving.session.ServingSession` owning its own encoding
  runtime (the paper's thread-local V register), allocator and process.
* **Determinism** — a batch's outcome is a pure function of (batch
  contents, table version): sessions are fresh per batch, the report
  excludes wall-clock time, and results merge in batch order.  Hence a
  ``workers=N`` report is byte-identical to ``workers=1`` modulo the
  ``workers`` field itself — the engine's distribution of work is
  unobservable in its output, which is what makes the scaling curve an
  apples-to-apples measurement.
"""

from __future__ import annotations

import hashlib
import json
import multiprocessing
import os
import pickle
import signal
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..ccencoding import Strategy
from ..ccencoding.base import Codec
from ..core.instrument import instrument
from ..defense.interpose import DEFAULT_ONLINE_QUOTA
from ..defense.patch_table import PatchTable
from ..patch import config as patch_config
from ..program.program import Program
from .handle import PatchTableHandle
from .services import (
    ServedService,
    inject_attacks,
    serving_registry,
    split_rounds,
)
from .session import BatchResult, ServingSession
from .stream import LazyRequestStream

#: Report schema identifier (bump on layout changes).
REPORT_SCHEMA = "repro/serving-report/v1"

#: Times the dispatcher will rebuild a crashed worker pool before giving
#: up on the serve.  Each rebuild resubmits only the unfinished batches,
#: so a single worker death costs one pool fork plus the lost batch —
#: the outcome stays byte-identical to an undisturbed run.
MAX_POOL_REBUILDS = 3


class ServingError(RuntimeError):
    """Engine misconfiguration or worker failure (picklable message)."""


@dataclass(frozen=True)
class ServingOptions:
    """Everything that shapes one serving run (all deterministic)."""

    service: str = "nginx"
    workers: int = 1
    requests: int = 1024
    batch_size: int = 256
    defended: bool = True
    allocator: str = "segregated"
    strategy: str = "incremental"
    #: Initial patch-table configuration text ("" = empty table).
    patches_text: str = ""
    #: Copy-on-write swaps: (batch_index, table config text).  The swap
    #: is applied at the admission of that batch index.
    swap_schedule: Tuple[Tuple[int, str], ...] = ()
    #: Inject the service's attack token after every N benign requests
    #: (0 = no attacks).
    attack_every: int = 0
    #: Back worker page frames with shared-memory arenas (workers > 1).
    shared_pages: bool = False
    quarantine_quota: int = DEFAULT_ONLINE_QUOTA
    #: Bounded admission: hold at most this many admitted batches in
    #: memory at a time (0 = legacy eager admission of the full
    #: stream).  Outcomes are byte-identical either way; the knob only
    #: bounds peak request memory, which matters when a fleet run
    #: drives many engines at once.
    max_admitted: int = 0


@dataclass(frozen=True)
class ServingPlan:
    """Worker-shipped state: program, codec, requests, table versions."""

    options: ServingOptions
    program: Program
    codec: Codec
    #: The admitted request stream (attack tokens included): the full
    #: tuple under eager admission, or a windowed
    #: :class:`~repro.serving.stream.LazyRequestStream` when
    #: ``max_admitted`` bounds admission.
    requests: Sequence[Any]
    #: version -> canonical table config text, for every published
    #: version (the copy-on-write wire format).
    tables: Tuple[Tuple[int, str], ...]
    #: Per-batch table version, stamped at admission.
    batch_versions: Tuple[int, ...]
    #: The service's attack token (None: no attack path).
    attack_token: Optional[Any]

    def batch(self, index: int) -> Tuple[Any, ...]:
        """The admitted request slice of batch ``index``."""
        if isinstance(self.requests, LazyRequestStream):
            return self.requests.batch(index)
        size = self.options.batch_size
        return tuple(self.requests[index * size:(index + 1) * size])


@dataclass
class ServingResult:
    """One engine run: the canonical report plus timing telemetry."""

    report: Dict[str, Any]
    batches: List[BatchResult]
    #: Wall-clock seconds of the dispatch loop (excluded from report).
    seconds: float
    workers: int
    #: High-water mark of admitted-but-live batches under bounded
    #: admission, observed on the controller-side stream (None when
    #: admission was eager, or when every batch ran in pool workers
    #: whose window state is per-process).  Telemetry, not report data.
    peak_admitted: Optional[int] = None

    @property
    def requests_per_second(self) -> float:
        """Wall-clock serving rate of this run."""
        if self.seconds <= 0:
            return 0.0
        return self.report["served"] / self.seconds

    @property
    def total_cycles(self) -> float:
        """Simulated cycles across all batches."""
        return sum(self.report["cycles"].values())


class _WorkerServeState:
    """Per-process serving state (pool worker, or in-process for the
    ``workers=1`` oracle — both run the identical code path)."""

    def __init__(self, plan: ServingPlan) -> None:
        self.plan = plan
        self.options = plan.options
        self._tables: Dict[int, PatchTable] = {}
        self._table_text = dict(plan.tables)

    def _table(self, version: int) -> PatchTable:
        table = self._tables.get(version)
        if table is None:
            text = self._table_text.get(version)
            if text is None:
                raise ServingError(f"batch stamped with unpublished "
                                   f"table version {version}")
            table = PatchTable(patch_config.loads(text))
            self._tables[version] = table
        return table

    def serve_batch(self, index: int) -> BatchResult:
        plan = self.plan
        options = self.options
        version = plan.batch_versions[index]
        session = ServingSession(
            plan.program, plan.codec,
            defended=options.defended,
            table=self._table(version),
            allocator=options.allocator,
            quarantine_quota=options.quarantine_quota)
        rounds = split_rounds(list(plan.batch(index)), plan.attack_token)
        outcomes, served, bytes_sent = session.serve_rounds(rounds)
        process = session.process
        return BatchResult(
            index=index,
            outcomes=tuple(outcomes),
            served=served,
            bytes_sent=bytes_sent,
            cycles=tuple(sorted(session.meter.snapshot().items())),
            profile=tuple(sorted(process.alloc_profile.items())),
            table_version=version,
            wall=time.monotonic(),
        )


#: The unpickled plan of this worker process (set by the initializer).
_STATE: Optional[_WorkerServeState] = None


def _init_worker(payload: bytes, shared_pages: bool = False) -> None:
    """Pool initializer: unpickle the serving plan once per worker."""
    global _STATE
    if shared_pages:
        from ..machine.pagestore import install_shared_worker_store

        install_shared_worker_store("repro-serve-pages")
    _STATE = _WorkerServeState(pickle.loads(payload))


def _maybe_inject_crash(index: int) -> None:
    """Fault injection for the crash-recovery tests (env-gated, no-op
    otherwise): SIGKILL this worker before serving the targeted batch.

    ``REPRO_SERVE_CRASH_BATCH`` names the batch index to die on;
    ``REPRO_SERVE_CRASH_FLAG`` is a flag-file path created atomically
    (``O_EXCL``) so exactly one worker dies exactly once — the
    resubmitted batch then serves normally.  With no flag set the
    batch crashes *every* attempt, which is the persistent-crash-loop
    case the bounded-rebuild test pins down.
    """
    target = os.environ.get("REPRO_SERVE_CRASH_BATCH")
    if target is None or int(target) != index:
        return
    flag = os.environ.get("REPRO_SERVE_CRASH_FLAG")
    if flag is not None:
        try:
            os.close(os.open(flag, os.O_CREAT | os.O_EXCL | os.O_WRONLY))
        except FileExistsError:
            return
    os.kill(os.getpid(), signal.SIGKILL)


def _serve_index(index: int) -> BatchResult:
    """Pool task: serve one admitted batch by index."""
    assert _STATE is not None, "worker initializer did not run"
    _maybe_inject_crash(index)
    return _STATE.serve_batch(index)


def _pool_context() -> multiprocessing.context.BaseContext:
    """Prefer ``fork`` (cheap workers); the plan is pickle-clean either
    way so ``spawn`` hosts work too."""
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context(
        "fork" if "fork" in methods else None)


class ServingEngine:
    """Admits, batches and dispatches a serving run."""

    def __init__(self, options: ServingOptions,
                 service: Optional[ServedService] = None,
                 program: Optional[Program] = None,
                 codec: Optional[Codec] = None) -> None:
        if options.workers < 1:
            raise ServingError(
                f"workers must be >= 1, got {options.workers}")
        if options.batch_size < 1:
            raise ServingError(
                f"batch_size must be >= 1, got {options.batch_size}")
        if service is None:
            registry = serving_registry()
            service = registry.get(options.service)
            if service is None:
                raise ServingError(
                    f"unknown service {options.service!r}; choose from "
                    f"{', '.join(sorted(registry))}")
        self.options = options
        self.service = service
        if program is None:
            program = service.program_factory()
        self.program = program
        if codec is None:
            codec = instrument(
                program,
                strategy=Strategy.from_name(options.strategy)).codec
        self.codec = codec
        #: Controller-side versioned table (the copy-on-write handle).
        self.handle = PatchTableHandle(
            PatchTable(patch_config.loads(options.patches_text))
            if options.patches_text else PatchTable.empty())
        self.plan = self._admit()
        #: Preforked worker pool (nginx's master/worker model): spawned
        #: lazily on the first parallel ``serve`` and reused across
        #: calls, so repeated runs pay the fork cost once.
        self._executor: Optional[ProcessPoolExecutor] = None

    # -- admission -----------------------------------------------------

    def _admit(self) -> ServingPlan:
        """Build the request stream and stamp batches with versions.

        With ``max_admitted`` set, the stream is a windowed
        :class:`LazyRequestStream` instead of one eager tuple: batches
        materialize on demand and at most ``max_admitted`` of them are
        held at a time, in the controller and in every worker alike.
        Version stamping is unchanged — it is pure arithmetic over the
        batch count and the swap schedule, no request content needed.
        """
        options = self.options
        if options.max_admitted < 0:
            raise ServingError(
                f"max_admitted must be >= 0, got {options.max_admitted}")
        if options.attack_every and self.service.attack_token is None:
            raise ServingError(
                f"service {self.service.key!r} has no attack path")
        requests: Sequence[Any]
        if options.max_admitted:
            requests = LazyRequestStream(
                self.service.key, options.requests, options.batch_size,
                attack_every=options.attack_every,
                max_admitted=options.max_admitted)
        else:
            eager: List[Any] = self.service.stream(options.requests)
            if options.attack_every:
                eager = inject_attacks(eager, self.service.attack_token,
                                       options.attack_every)
            requests = tuple(eager)
        size = options.batch_size
        n_batches = (len(requests) + size - 1) // size
        schedule = dict(options.swap_schedule)
        versions: List[int] = []
        for index in range(n_batches):
            text = schedule.pop(index, None)
            if text is not None:
                self.handle.swap(PatchTable(patch_config.loads(text)))
            versions.append(self.handle.entry.version)
        if schedule:
            raise ServingError(
                f"swap schedule references batch indices beyond the "
                f"run: {sorted(schedule)} (only {n_batches} batches)")
        tables = tuple((entry.version, entry.config_text)
                       for entry in self.handle.history)
        return ServingPlan(
            options=options,
            program=self.program,
            codec=self.codec,
            requests=requests,
            tables=tables,
            batch_versions=tuple(versions),
            attack_token=self.service.attack_token,
        )

    # -- dispatch ------------------------------------------------------

    def serve(self) -> ServingResult:
        """Run every admitted batch; merge results in batch order."""
        plan = self.plan
        n_batches = len(plan.batch_versions)
        start = time.perf_counter()
        if self.options.workers == 1 or n_batches <= 1:
            state = _WorkerServeState(plan)
            batches = [state.serve_batch(index)
                       for index in range(n_batches)]
        else:
            batches = self._serve_parallel(plan, n_batches)
        seconds = time.perf_counter() - start
        report = self._build_report(batches)
        peak = (plan.requests.peak_admitted
                if isinstance(plan.requests, LazyRequestStream) else None)
        return ServingResult(report=report, batches=batches,
                             seconds=seconds,
                             workers=self.options.workers,
                             peak_admitted=peak)

    def _serve_parallel(self, plan: ServingPlan,
                        n_batches: int) -> List[BatchResult]:
        """Dispatch with crash recovery: a dead worker breaks the whole
        ``ProcessPoolExecutor`` (every in-flight future raises
        ``BrokenProcessPool``), so recovery reaps the broken pool,
        preforks a fresh one and resubmits only the batches that never
        completed.  Batch outcomes are pure functions of (batch, table
        version), so a rerun batch is byte-identical to what the dead
        worker would have produced — the ``workers=1`` oracle digest
        still matches.  Persistent crash loops fail the serve after
        :data:`MAX_POOL_REBUILDS` rebuilds instead of spinning."""
        results: List[Optional[BatchResult]] = [None] * n_batches
        rebuilds = 0
        while True:
            try:
                self._dispatch(plan, n_batches, results)
                break
            except BrokenProcessPool:
                rebuilds += 1
                self.close()  # reap the broken pool; _pool re-forks
                if rebuilds > MAX_POOL_REBUILDS:
                    raise ServingError(
                        f"worker pool died {rebuilds} times; giving up "
                        f"after {MAX_POOL_REBUILDS} rebuilds (crash "
                        f"loop, not a one-off worker death)") from None
        missing = [i for i, r in enumerate(results) if r is None]
        if missing:
            raise ServingError(f"batches {missing} never completed")
        return [batch for batch in results if batch is not None]

    def _dispatch(self, plan: ServingPlan, n_batches: int,
                  results: List[Optional[BatchResult]]) -> None:
        """One dispatch round over the unfinished batches.

        Bounded in-flight dispatch (admission backpressure): batches go
        to workers as they drain, but never more are in flight than the
        host can actually run — oversubscribing a small host with
        CPU-bound batches only buys cache thrash.  Results merge by
        batch index, so completion order is unobservable.
        """
        executor = self._pool(plan, n_batches)
        max_inflight = max(1, min(self.options.workers,
                                  os.cpu_count() or 1))
        pending = [i for i, r in enumerate(results) if r is None]
        inflight: Dict[Any, int] = {}
        next_pos = 0
        while next_pos < len(pending) or inflight:
            while (next_pos < len(pending)
                   and len(inflight) < max_inflight):
                index = pending[next_pos]
                future = executor.submit(_serve_index, index)
                inflight[future] = index
                next_pos += 1
            done, _ = wait(inflight, return_when=FIRST_COMPLETED)
            for future in done:
                results[inflight.pop(future)] = future.result()

    def _pool(self, plan: ServingPlan,
              n_batches: int) -> ProcessPoolExecutor:
        """The engine's preforked worker pool (created once)."""
        if self._executor is not None:
            return self._executor
        try:
            payload = pickle.dumps(plan,
                                   protocol=pickle.HIGHEST_PROTOCOL)
        except Exception as exc:
            raise ServingError(
                f"serving plan is not picklable ({exc!r}); parallel "
                f"workers need pickle-clean programs and codecs — run "
                f"with workers=1") from None
        workers = min(self.options.workers, n_batches)
        self._executor = ProcessPoolExecutor(
            max_workers=workers,
            mp_context=_pool_context(),
            initializer=_init_worker,
            initargs=(payload, self.options.shared_pages))
        return self._executor

    def close(self) -> None:
        """Shut down the preforked worker pool (idempotent)."""
        if self._executor is not None:
            self._executor.shutdown()
            self._executor = None

    def __enter__(self) -> "ServingEngine":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    def __del__(self) -> None:
        try:
            self.close()
        except Exception:
            pass

    # -- deterministic merge -------------------------------------------

    def _build_report(self, batches: List[BatchResult]) -> Dict[str, Any]:
        """The canonical report: a pure function of batch results.

        Cycles sum in batch order (fixed float-addition order), the
        outcome digest hashes the concatenated per-request outcomes, and
        no wall-clock quantity enters — so any worker count that serves
        the same batches produces a byte-identical report modulo the
        ``workers`` field.
        """
        options = self.options
        outcome_counts: Dict[str, int] = {}
        all_outcomes: List[Tuple[str, int]] = []
        cycles: Dict[str, float] = {}
        profile: Dict[Tuple[str, int], int] = {}
        served = 0
        bytes_sent = 0
        for batch in batches:
            all_outcomes.extend(batch.outcomes)
            served += batch.served
            bytes_sent += batch.bytes_sent
            for status, _ in batch.outcomes:
                outcome_counts[status] = outcome_counts.get(status, 0) + 1
            for category, value in batch.cycles:
                cycles[category] = cycles.get(category, 0) + value
            for key, count in batch.profile:
                profile[key] = profile.get(key, 0) + count
        digest = hashlib.sha256(
            json.dumps(all_outcomes, sort_keys=True,
                       separators=(",", ":")).encode()).hexdigest()
        return {
            "schema": REPORT_SCHEMA,
            "service": options.service,
            "workers": options.workers,
            "requests": options.requests,
            "batch_size": options.batch_size,
            "defended": options.defended,
            "allocator": options.allocator,
            "strategy": options.strategy,
            "attack_every": options.attack_every,
            "max_admitted": options.max_admitted,
            "batches": len(batches),
            "table_versions": [batch.table_version for batch in batches],
            "served": served,
            "bytes_sent": bytes_sent,
            "outcomes": dict(sorted(outcome_counts.items())),
            "outcomes_digest": digest,
            "cycles": {category: cycles[category]
                       for category in sorted(cycles)},
            "profile": [[fun, ccid, profile[(fun, ccid)]]
                        for fun, ccid in sorted(profile)],
        }


def serve(options: ServingOptions, **engine_kwargs: Any) -> ServingResult:
    """Convenience one-shot: build an engine, run it, reap the pool."""
    with ServingEngine(options, **engine_kwargs) as engine:
        return engine.serve()


def default_workers() -> int:
    """Host CPU count (the ``--workers 0`` CLI convention)."""
    return os.cpu_count() or 1
