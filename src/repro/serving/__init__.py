"""Concurrent serving engine (paper Section VI deployment shape).

Multi-worker request dispatch over the defended allocator: per-worker
calling-context state, read-mostly patch tables with copy-on-write swap,
and batched request execution through the fused basic-block machinery.
"""

from .engine import (
    REPORT_SCHEMA,
    ServingEngine,
    ServingError,
    ServingOptions,
    ServingPlan,
    ServingResult,
    default_workers,
    serve,
)
from .handle import PatchTableHandle, SwapError, TableVersion
from .services import (
    ServedService,
    diagnose_nginx_leak,
    inject_attacks,
    nginx_body_patch,
    serving_registry,
    split_rounds,
)
from .session import ALLOCATORS, BatchResult, ServingSession, make_allocator
from .stream import LazyRequestStream

__all__ = [
    "ALLOCATORS",
    "BatchResult",
    "LazyRequestStream",
    "PatchTableHandle",
    "REPORT_SCHEMA",
    "ServedService",
    "ServingEngine",
    "ServingError",
    "ServingOptions",
    "ServingPlan",
    "ServingResult",
    "ServingSession",
    "SwapError",
    "TableVersion",
    "default_workers",
    "diagnose_nginx_leak",
    "inject_attacks",
    "make_allocator",
    "nginx_body_patch",
    "serve",
    "serving_registry",
    "split_rounds",
]
