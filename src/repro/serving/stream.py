"""Bounded admission: a lazy, windowed request source.

The engine historically admitted the full request stream up front — one
tuple holding every request of the run.  That is fine for one engine,
but a fleet run drives N engines at once and each would pin its whole
stream in memory.  :class:`LazyRequestStream` is the bounded-admission
alternative behind ``ServingOptions.max_admitted``: it materializes
request batches on demand from the service's deterministic token
generator and keeps at most ``max_admitted`` batches alive at a time.

Determinism is unchanged — the generator yields the exact token
sequence the eager path builds (attack injection included), so reports
are byte-identical whether admission is bounded or not.  The stream is
picklable (the generator and window cache are per-process state and
rebuilt lazily), so it ships to pool workers exactly like the eager
request tuple.  Batch access is effectively monotone (the dispatcher
hands out indices in order with bounded in-flight), which the window
exploits; a backward access replays the generator from the start —
correct, merely slower, and only reachable through crash-recovery
resubmission.
"""

from __future__ import annotations

from typing import Any, Dict, Iterator, Optional, Tuple


class LazyRequestStream:
    """Windowed view over a deterministic request-token generator.

    ``service_key`` names a :func:`~repro.serving.services.
    serving_registry` entry whose token generator is replayed
    per-process; ``attack_every`` injects the service's attack token
    after every N benign requests, mirroring
    :func:`~repro.serving.services.inject_attacks` draw for draw.
    """

    def __init__(self, service_key: str, count: int, batch_size: int,
                 attack_every: int = 0, max_admitted: int = 1) -> None:
        if max_admitted < 1:
            raise ValueError(
                f"max_admitted must be >= 1, got {max_admitted}")
        self.service_key = service_key
        self.count = count
        self.batch_size = batch_size
        self.attack_every = attack_every
        self.max_admitted = max_admitted
        self._reset_window()

    # -- pickling (window state is per-process) ------------------------

    def __getstate__(self) -> Dict[str, Any]:
        return {"service_key": self.service_key, "count": self.count,
                "batch_size": self.batch_size,
                "attack_every": self.attack_every,
                "max_admitted": self.max_admitted}

    def __setstate__(self, state: Dict[str, Any]) -> None:
        self.__dict__.update(state)
        self._reset_window()

    def _reset_window(self) -> None:
        self._iter: Optional[Iterator[Any]] = None
        self._next_batch = 0
        #: FIFO window of materialized batches (dict preserves order).
        self._window: Dict[int, Tuple[Any, ...]] = {}
        self.peak_admitted = 0
        self.restarts = 0

    # -- the deterministic token sequence ------------------------------

    def _tokens(self) -> Iterator[Any]:
        """Benign tokens with attacks injected, one at a time."""
        from .services import serving_registry

        service = serving_registry()[self.service_key]
        if service.stream_iter is not None:
            benign: Iterator[Any] = service.stream_iter(self.count)
        else:
            benign = iter(service.stream(self.count))
        every = self.attack_every
        served = 0
        for token in benign:
            yield token
            served += 1
            if every and served % every == 0:
                yield service.attack_token

    def __len__(self) -> int:
        """Total admitted requests (attack injections included)."""
        extra = self.count // self.attack_every if self.attack_every else 0
        return self.count + extra

    @property
    def n_batches(self) -> int:
        """Number of batches the stream chunks into."""
        size = self.batch_size
        return (len(self) + size - 1) // size

    # -- windowed access -----------------------------------------------

    def batch(self, index: int) -> Tuple[Any, ...]:
        """The requests of batch ``index`` (materialized on demand).

        At most :attr:`max_admitted` batches are held after the call;
        :attr:`peak_admitted` records the high-water mark, which the
        admission regression test pins to the knob.
        """
        cached = self._window.get(index)
        if cached is not None:
            return cached
        if self._iter is None or index < self._next_batch:
            # Backward access (crash-recovery resubmission): replay the
            # deterministic generator from the start.
            if self._iter is not None:
                self.restarts += 1
            self._iter = self._tokens()
            self._next_batch = 0
            self._window.clear()
        size = self.batch_size
        batch: Tuple[Any, ...] = ()
        while self._next_batch <= index:
            chunk = []
            for _ in range(size):
                try:
                    chunk.append(next(self._iter))
                except StopIteration:
                    break
            batch = tuple(chunk)
            current = self._next_batch
            self._next_batch += 1
            if current >= index:
                # Only the window ahead of the dispatcher is retained;
                # skipped-over batches were admitted transiently and
                # dropped (they never exceed the window either).
                self._window[current] = batch
                while len(self._window) > self.max_admitted:
                    self._window.pop(next(iter(self._window)))
                self.peak_admitted = max(self.peak_admitted,
                                         len(self._window))
        return batch
