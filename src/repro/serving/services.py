"""Served-workload adapters: what the engine needs to know per service.

A :class:`ServedService` binds a service program to the three hooks the
engine drives: a deterministic request stream, the batched entry point
(``serve_main``), and the attack token that marks a request as a planted
exploit (rounds split around it, because an exploited request may fault
mid-flight).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, Iterator, List, Optional

from ..ccencoding.base import Codec
from ..patch.model import HeapPatch
from ..program.program import Program
from ..vulntypes import VulnType
from ..workloads.services import mysql as mysql_mod
from ..workloads.services import nginx as nginx_mod


@dataclass(frozen=True)
class ServedService:
    """One service the engine can drive."""

    key: str
    program_factory: Callable[[], Program]
    #: count -> deterministic request-token list (the benign mix).
    stream: Callable[[int], List[Any]]
    #: The injectable attack request token (None: no attack path).
    attack_token: Optional[Any] = None
    #: Lazy variant of ``stream`` for bounded admission (same tokens,
    #: one at a time); None falls back to iterating ``stream``.
    stream_iter: Optional[Callable[[int], Iterator[Any]]] = None
    #: Diagnosis hook: the patches a site's forensic analysis of the
    #: service's known attack would emit (None: nothing to diagnose).
    diagnose: Optional[
        Callable[[Program, Codec], List[HeapPatch]]] = None


def serving_registry() -> Dict[str, ServedService]:
    """The services ``repro serve`` knows about."""
    return {
        "nginx": ServedService(
            key="nginx",
            program_factory=nginx_mod.NginxServer,
            stream=nginx_mod.request_stream,
            attack_token=nginx_mod.LEAK_REQUEST,
            stream_iter=nginx_mod.request_stream_iter,
            diagnose=diagnose_nginx_leak,
        ),
        "mysql": ServedService(
            key="mysql",
            program_factory=mysql_mod.MySqlServer,
            stream=mysql_mod.request_stream,
            attack_token=None,
            stream_iter=mysql_mod.request_stream_iter,
        ),
    }


def split_rounds(requests: List[Any],
                 attack_token: Optional[Any]) -> List[List[Any]]:
    """Split a batch into rounds, isolating each attack request.

    A round is one ``serve_main`` run.  Benign requests group into
    maximal runs; every attack token becomes a singleton round so a
    guard-page fault aborts only the exploited request, never its batch
    neighbours.
    """
    if attack_token is None:
        return [requests] if requests else []
    rounds: List[List[Any]] = []
    benign: List[Any] = []
    for token in requests:
        if token == attack_token:
            if benign:
                rounds.append(benign)
                benign = []
            rounds.append([token])
        else:
            benign.append(token)
    if benign:
        rounds.append(benign)
    return rounds


def inject_attacks(requests: List[Any], attack_token: Any,
                   every: int) -> List[Any]:
    """Plant an attack token after every ``every`` benign requests."""
    if every <= 0:
        return list(requests)
    out: List[Any] = []
    for index, token in enumerate(requests):
        out.append(token)
        if (index + 1) % every == 0:
            out.append(attack_token)
    return out


def nginx_body_patch(program: Program, codec: Codec) -> HeapPatch:
    """The overflow patch defeating the nginx serving leak.

    Encodes the calling context of the response-body allocation —
    ``main → worker_loop → handle_request → send_response →
    malloc(body_buf)`` — under the deployed codec and returns the
    ``{malloc, CCID, OVERFLOW}`` patch a diagnosis of the leak would
    emit.  Used by tests and the swap demonstration; the CCID is
    identical for the batched and per-op serving paths by construction.
    """
    graph = program.graph
    path = (
        graph.site("main", "worker_loop", ""),
        graph.site("worker_loop", "handle_request", ""),
        graph.site("handle_request", "send_response", ""),
        graph.site("send_response", "malloc", "body_buf"),
    )
    ccid = codec.encode_path(path)
    return HeapPatch("malloc", ccid, VulnType.OVERFLOW)


def diagnose_nginx_leak(program: Program, codec: Codec) -> List[HeapPatch]:
    """The fleet diagnosis hook for the nginx serving leak.

    What a site's offline forensic pass over an observed ``leaked``
    outcome would submit to the patch registry: the single
    ``{malloc, CCID, OVERFLOW}`` patch for the response-body allocation.
    """
    return [nginx_body_patch(program, codec)]
