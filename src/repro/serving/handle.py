"""Versioned patch-table handle: read-mostly sharing, copy-on-write swap.

The paper's arXiv companion ("code-less patching") frames heap patches as
pure configuration a site can swap in without rebuilding.  In a serving
deployment that swap must not stall workers: the table is read on every
allocation, replaced perhaps once a day.  :class:`PatchTableHandle` is
the controller-side primitive for that shape:

* Readers call :attr:`entry` — one attribute load — and get an immutable
  :class:`TableVersion` (version number, frozen table, canonical config
  text).  Because the entry is immutable and published with a single
  reference store, a reader can never observe a half-swapped state: it
  holds either the old version or the new one, both internally
  consistent.  No lock is taken on the read side, ever.
* The controller calls :meth:`swap` with a new frozen table.  The handle
  builds the next immutable entry off to the side (the copy), then
  publishes it with one store (the write).  Old entries stay valid for
  readers that still hold them and remain resolvable by version for
  audit (:meth:`resolve`, :attr:`history`).

The serving engine applies swaps at batch admission: every request batch
is stamped with the entry current at admission, so all workers observe a
swap within one batch boundary — the engine-level analogue of RCU's
grace period.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..defense.patch_table import PatchTable


@dataclass(frozen=True)
class TableVersion:
    """One immutable published table version."""

    #: Monotonically increasing version number (0 = the initial table).
    version: int
    #: The frozen patch table of this version.
    table: PatchTable
    #: Canonical configuration text (:meth:`PatchTable.serialize`) — the
    #: wire format shipped to worker processes, and a content hash: two
    #: versions with equal text hold the same patches.
    config_text: str


class SwapError(ValueError):
    """Invalid table handed to :meth:`PatchTableHandle.swap`."""


class PatchTableHandle:
    """Single-writer, many-reader handle over a versioned patch table."""

    def __init__(self, table: Optional[PatchTable] = None) -> None:
        initial = table if table is not None else PatchTable.empty()
        if not initial.frozen:
            raise SwapError("patch table must be frozen before publication")
        entry = TableVersion(0, initial, initial.serialize())
        self._history: List[TableVersion] = [entry]
        #: The published entry.  Readers take this attribute in one load;
        #: the swap protocol only ever replaces the whole reference.
        self._entry = entry

    # -- read side (lock-free) -----------------------------------------

    @property
    def entry(self) -> TableVersion:
        """The current version — one reference load, never torn."""
        return self._entry

    @property
    def version(self) -> int:
        """Version number of the current entry."""
        return self._entry.version

    @property
    def table(self) -> PatchTable:
        """The current frozen table."""
        return self._entry.table

    # -- write side (controller) ---------------------------------------

    def swap(self, table: PatchTable) -> TableVersion:
        """Publish ``table`` as the next version (copy-on-write).

        The new entry is fully constructed — version stamped, config
        text rendered — before the single publishing store, so a
        concurrent reader sees the old entry or the new entry, nothing
        in between.  Returns the published entry.
        """
        if not table.frozen:
            raise SwapError("patch table must be frozen before publication")
        entry = TableVersion(self._entry.version + 1, table,
                             table.serialize())
        self._history.append(entry)
        self._entry = entry
        return entry

    # -- audit ---------------------------------------------------------

    def resolve(self, version: int) -> TableVersion:
        """Look up a published version by number (for audit/replay)."""
        for entry in self._history:
            if entry.version == version:
                return entry
        raise KeyError(f"no published table version {version}")

    @property
    def history(self) -> Tuple[TableVersion, ...]:
        """Every version published through this handle, oldest first."""
        return tuple(self._history)
