"""Symbolic sizes/offsets/counts and a small *abstaining* solver.

The heap-layout search engine (:mod:`repro.synth`) must answer questions
like "what is the smallest overflow length ``l`` that reaches the victim
payload, over every request size this allocation site can issue?".
Brute-forcing sizes against the allocator works but scales with the
concretization of every interval; this module instead lifts the question
into a tiny constraint system over the *same* abstraction the static
analyses already use (:class:`~repro.analysis.intervals.Interval`), in
the spirit of the solver-backed ``s_value`` layer of simuvex: symbolic
values are linear expressions over named variables, each variable owns
an interval domain, and relations plus monotone function applications
(chunk rounding) connect them.

The solver is deliberately small and honest:

* **interval propagation** — relational constraints tighten variable
  domains to a fixed point (sound: only assignments that cannot satisfy
  a constraint for *any* choice of the other variables are dropped);
* **bounded enumeration** — remaining finite domains are searched
  depth-first in declaration order with per-level constraint pruning
  and a node budget, yielding the objective-minimal, lexicographically
  smallest model;
* **abstention** — anything the solver cannot decide soundly (an
  unbounded domain after propagation, a blown node budget) produces an
  explicit :data:`ABSTAIN` result carrying the reason.  Abstentions are
  *answers*, not errors: callers report them (``repro synth`` counts
  them; ``repro lint --synthesizability`` predicts them) and move on.

Determinism contract: :meth:`Problem.solve` is a pure function of the
problem — no randomness, no iteration over unordered containers — so
repeated runs (and parallel shards) produce identical results.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Tuple

from .intervals import Interval

__all__ = [
    "ABSTAIN",
    "Bounds",
    "DEFAULT_NODE_BUDGET",
    "LinExpr",
    "MonotoneConstraint",
    "Problem",
    "Relation",
    "RelationalConstraint",
    "SAT",
    "SolveResult",
    "UNSAT",
]

#: Variable-assignment trials the enumerator may spend before abstaining.
DEFAULT_NODE_BUDGET: int = 100_000

#: Propagation rounds before declaring the (monotone) chain stable.  The
#: loop exits early on the first round without a refinement; the cap
#: only bounds pathological slow-converging chains.
_MAX_PROPAGATION_ROUNDS: int = 64

#: ``SolveResult.status`` values.
SAT: str = "sat"
UNSAT: str = "unsat"
ABSTAIN: str = "abstain"


def _ceil_div(numerator: int, denominator: int) -> int:
    """Exact ``ceil(numerator / denominator)`` for integers."""
    return -((-numerator) // denominator)


# ---------------------------------------------------------------------------
# Expression bounds (may be negative or infinite, unlike Interval)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Bounds:
    """Bounds of an expression value; ``None`` means unbounded that way.

    :class:`~repro.analysis.intervals.Interval` models *byte counts*
    (non-negative, bounded below); expression values such as
    ``chunk - size - 16`` can be negative or unbounded on either side,
    so propagation works over this wider lattice and only variable
    domains stay intervals.
    """

    lo: Optional[int]
    hi: Optional[int]

    @staticmethod
    def from_interval(interval: Interval) -> "Bounds":
        """Embed a domain interval (always bounded below)."""
        return Bounds(interval.lo, interval.hi)

    @staticmethod
    def point(value: int) -> "Bounds":
        """The exact value ``value``."""
        return Bounds(value, value)

    def add(self, other: "Bounds") -> "Bounds":
        """Interval addition; infinity absorbs."""
        lo = (None if self.lo is None or other.lo is None
              else self.lo + other.lo)
        hi = (None if self.hi is None or other.hi is None
              else self.hi + other.hi)
        return Bounds(lo, hi)

    def scale(self, factor: int) -> "Bounds":
        """Multiply by a concrete factor (sign-aware)."""
        if factor == 0:
            return Bounds.point(0)
        lo = None if self.lo is None else self.lo * factor
        hi = None if self.hi is None else self.hi * factor
        if factor < 0:
            lo, hi = hi, lo
        return Bounds(lo, hi)

    def contains(self, value: int) -> bool:
        """Membership test."""
        return ((self.lo is None or value >= self.lo)
                and (self.hi is None or value <= self.hi))

    def describe(self) -> str:
        """``[lo,hi]`` with ``-inf``/``inf`` for missing bounds."""
        lo = "-inf" if self.lo is None else str(self.lo)
        hi = "inf" if self.hi is None else str(self.hi)
        return f"[{lo},{hi}]"


# ---------------------------------------------------------------------------
# Linear expressions over named variables
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class LinExpr:
    """``sum(coeff * var) + const`` with integer coefficients.

    The symbolic-value type of the synthesis layer.  Unlike
    :class:`~repro.analysis.intervals.Num` (whose constant part is
    itself an interval and whose symbols are opaque), every variable
    here is *named into a domain* owned by a :class:`Problem`, so the
    same expression can be both evaluated concretely and bounded.
    """

    terms: Tuple[Tuple[str, int], ...] = ()
    const: int = 0

    @staticmethod
    def var(name: str) -> "LinExpr":
        """The expression ``1 * name``."""
        return LinExpr(((name, 1),), 0)

    @staticmethod
    def of(value: int) -> "LinExpr":
        """The constant expression ``value``."""
        return LinExpr((), value)

    def _combine(self, other: "LinExpr", sign: int) -> "LinExpr":
        coeffs: Dict[str, int] = dict(self.terms)
        for name, coeff in other.terms:
            coeffs[name] = coeffs.get(name, 0) + sign * coeff
        terms = tuple(sorted(
            (name, coeff) for name, coeff in coeffs.items() if coeff))
        return LinExpr(terms, self.const + sign * other.const)

    def add(self, other: "LinExpr") -> "LinExpr":
        """Symbolic addition."""
        return self._combine(other, 1)

    def sub(self, other: "LinExpr") -> "LinExpr":
        """Symbolic subtraction."""
        return self._combine(other, -1)

    def scale(self, factor: int) -> "LinExpr":
        """Multiplication by a concrete factor (stays linear)."""
        return LinExpr(
            tuple((name, coeff * factor) for name, coeff in self.terms
                  if coeff * factor),
            self.const * factor)

    def shift(self, delta: int) -> "LinExpr":
        """Add a constant."""
        return LinExpr(self.terms, self.const + delta)

    @property
    def free_vars(self) -> Tuple[str, ...]:
        """Variable names the expression mentions, sorted."""
        return tuple(name for name, _ in self.terms)

    def evaluate(self, assignment: Mapping[str, int]) -> int:
        """Concrete value under a full assignment (KeyError if partial)."""
        return self.const + sum(coeff * assignment[name]
                                for name, coeff in self.terms)

    def bounds(self, env: Mapping[str, Interval]) -> Bounds:
        """Sound value bounds under per-variable domain intervals."""
        total = Bounds.point(self.const)
        for name, coeff in self.terms:
            total = total.add(
                Bounds.from_interval(env[name]).scale(coeff))
        return total

    def describe(self) -> str:
        """Human-readable form, e.g. ``chunk - src + 1``."""
        parts: List[str] = []
        for name, coeff in self.terms:
            if not parts:
                prefix = "" if coeff > 0 else "-"
            else:
                prefix = " + " if coeff > 0 else " - "
            magnitude = abs(coeff)
            parts.append(prefix + (name if magnitude == 1
                                   else f"{magnitude}*{name}"))
        if self.const or not parts:
            sign = " + " if self.const >= 0 and parts else (
                " - " if parts else "")
            parts.append(f"{sign}{abs(self.const) if parts else self.const}")
        return "".join(parts)


# ---------------------------------------------------------------------------
# Constraints
# ---------------------------------------------------------------------------


class Relation(enum.Enum):
    """Relational operators between two linear expressions."""

    LE = "<="
    GE = ">="
    EQ = "=="


@dataclass(frozen=True)
class RelationalConstraint:
    """``lhs REL rhs`` over linear expressions."""

    lhs: LinExpr
    rel: Relation
    rhs: LinExpr

    def holds(self, assignment: Mapping[str, int]) -> bool:
        """Concrete truth under a full assignment."""
        left = self.lhs.evaluate(assignment)
        right = self.rhs.evaluate(assignment)
        if self.rel is Relation.LE:
            return left <= right
        if self.rel is Relation.GE:
            return left >= right
        return left == right

    @property
    def free_vars(self) -> Tuple[str, ...]:
        """All variables either side mentions (sorted, deduplicated)."""
        return tuple(sorted(set(self.lhs.free_vars)
                            | set(self.rhs.free_vars)))

    def describe(self) -> str:
        """``lhs <= rhs`` rendering."""
        return (f"{self.lhs.describe()} {self.rel.value} "
                f"{self.rhs.describe()}")


@dataclass(frozen=True)
class MonotoneConstraint:
    """``result == fn(arg)`` for a monotone non-decreasing ``fn``.

    The escape hatch out of linear arithmetic the heap geometry needs:
    chunk rounding (:func:`~repro.allocator.chunk.request_to_chunk_size`)
    is piecewise-constant, not linear, but it *is* monotone, so its
    image over an argument interval is exactly ``[fn(lo), fn(hi)]`` —
    enough for sound forward propagation.  Arguments are clamped at 0
    before application (every ``fn`` in this domain consumes a byte
    count).  No inverse propagation is attempted; if the argument stays
    unbounded the solver abstains rather than guessing.
    """

    result: str
    fn: Callable[[int], int]
    arg: LinExpr
    fn_name: str

    def holds(self, assignment: Mapping[str, int]) -> bool:
        """Concrete truth under a full assignment."""
        value = max(self.arg.evaluate(assignment), 0)
        return assignment[self.result] == self.fn(value)

    @property
    def free_vars(self) -> Tuple[str, ...]:
        """The result variable plus the argument's variables."""
        return tuple(sorted({self.result, *self.arg.free_vars}))

    def describe(self) -> str:
        """``result == fn(arg)`` rendering."""
        return f"{self.result} == {self.fn_name}({self.arg.describe()})"


# ---------------------------------------------------------------------------
# Solve results
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class SolveResult:
    """Outcome of one :meth:`Problem.solve` call.

    ``status`` is :data:`SAT` (model found; ``assignment`` and, when an
    objective was given, ``objective`` are set), :data:`UNSAT` (no
    assignment exists — a definite answer), or :data:`ABSTAIN` (the
    solver cannot decide soundly; ``reason`` says why and is never
    empty).
    """

    status: str
    assignment: Tuple[Tuple[str, int], ...] = ()
    objective: Optional[int] = None
    reason: str = ""
    #: Variable-assignment trials the enumeration spent.
    nodes: int = 0

    @property
    def sat(self) -> bool:
        """True when a model was found."""
        return self.status == SAT

    @property
    def abstained(self) -> bool:
        """True when the solver declined to decide."""
        return self.status == ABSTAIN

    def value(self, name: str) -> int:
        """The model's value for ``name`` (KeyError when absent)."""
        for var, val in self.assignment:
            if var == name:
                return val
        raise KeyError(name)

    def describe(self) -> str:
        """One-line result rendering."""
        if self.sat:
            model = ", ".join(f"{name}={value}"
                              for name, value in self.assignment)
            suffix = (f" (objective {self.objective})"
                      if self.objective is not None else "")
            return f"sat: {model}{suffix}"
        return f"{self.status}: {self.reason}"


# ---------------------------------------------------------------------------
# The problem container and solver
# ---------------------------------------------------------------------------


@dataclass
class Problem:
    """A set of interval-domained variables plus constraints.

    Variables are enumerated in *declaration order*; declare derived
    quantities (chunk sizes, overflow lengths) after their inputs so
    the per-level constraint pruning cuts the search early.
    """

    #: name -> domain, in declaration order (dict preserves insertion).
    domains: Dict[str, Interval] = field(default_factory=dict)
    relations: List[RelationalConstraint] = field(default_factory=list)
    monotones: List[MonotoneConstraint] = field(default_factory=list)

    def add_var(self, name: str, domain: Interval) -> LinExpr:
        """Declare a variable; returns its expression for convenience."""
        if name in self.domains:
            raise ValueError(f"variable {name!r} declared twice")
        self.domains[name] = domain
        return LinExpr.var(name)

    def require(self, lhs: LinExpr, rel: Relation, rhs: LinExpr) -> None:
        """Add ``lhs REL rhs``; unknown variable names are rejected."""
        constraint = RelationalConstraint(lhs, rel, rhs)
        for name in constraint.free_vars:
            if name not in self.domains:
                raise ValueError(f"constraint uses undeclared "
                                 f"variable {name!r}")
        self.relations.append(constraint)

    def define_monotone(self, result: str, fn: Callable[[int], int],
                        arg: LinExpr, fn_name: str) -> None:
        """Add ``result == fn(arg)`` for monotone non-decreasing ``fn``."""
        constraint = MonotoneConstraint(result, fn, arg, fn_name)
        for name in constraint.free_vars:
            if name not in self.domains:
                raise ValueError(f"monotone constraint uses undeclared "
                                 f"variable {name!r}")
        self.monotones.append(constraint)

    # -- propagation -------------------------------------------------------

    def _tighten(self, env: Dict[str, Interval], name: str,
                 lo: Optional[int], hi: Optional[int]) -> Optional[bool]:
        """Intersect ``env[name]`` with ``[lo, hi]``.

        Returns True when the domain shrank, False when unchanged, and
        ``None`` when the intersection is empty (infeasible).
        """
        domain = env[name]
        new_lo = domain.lo if lo is None else max(domain.lo, lo)
        if hi is None:
            new_hi = domain.hi
        elif domain.hi is None:
            new_hi = hi
        else:
            new_hi = min(domain.hi, hi)
        if new_hi is not None and new_hi < new_lo:
            return None
        if new_lo == domain.lo and new_hi == domain.hi:
            return False
        env[name] = Interval(new_lo, new_hi)
        return True

    def _propagate_relation(self, env: Dict[str, Interval],
                            constraint: RelationalConstraint
                            ) -> Optional[bool]:
        """One propagation step for ``lhs REL rhs``; ``None`` = unsat.

        Normalized as ``expr = lhs - rhs``; for each variable ``x`` with
        coefficient ``a``, ``expr <= 0`` can only hold when
        ``a*x <= -min(rest)`` for the remaining terms' bounds — an
        existential (sound) pruning: every surviving value still has a
        chance, every dropped value provably has none.
        """
        expr = constraint.lhs.sub(constraint.rhs)
        changed = False
        for name, coeff in expr.terms:
            rest = expr.sub(LinExpr.var(name).scale(coeff))
            rest_bounds = rest.bounds(env)
            derived_lo: Optional[int] = None
            derived_hi: Optional[int] = None
            if constraint.rel in (Relation.LE, Relation.EQ) \
                    and rest_bounds.lo is not None:
                # a*x <= -rest possible iff a*x <= -min(rest).
                limit = -rest_bounds.lo
                if coeff > 0:
                    derived_hi = limit // coeff
                else:
                    derived_lo = _ceil_div(limit, coeff)
            if constraint.rel in (Relation.GE, Relation.EQ) \
                    and rest_bounds.hi is not None:
                # a*x >= -rest possible iff a*x >= -max(rest).
                limit = -rest_bounds.hi
                if coeff > 0:
                    lo2 = _ceil_div(limit, coeff)
                    derived_lo = (lo2 if derived_lo is None
                                  else max(derived_lo, lo2))
                else:
                    hi2 = limit // coeff
                    derived_hi = (hi2 if derived_hi is None
                                  else min(derived_hi, hi2))
            outcome = self._tighten(env, name, derived_lo, derived_hi)
            if outcome is None:
                return None
            changed = changed or outcome
        return changed

    def _propagate_monotone(self, env: Dict[str, Interval],
                            constraint: MonotoneConstraint
                            ) -> Optional[bool]:
        """Forward-propagate ``result == fn(arg)``; ``None`` = unsat."""
        arg_bounds = constraint.arg.bounds(env)
        lo_arg = max(arg_bounds.lo or 0, 0)
        result_lo = constraint.fn(lo_arg)
        result_hi = (constraint.fn(max(arg_bounds.hi, 0))
                     if arg_bounds.hi is not None else None)
        return self._tighten(env, constraint.result, result_lo, result_hi)

    def _propagate(self, env: Dict[str, Interval]) -> Optional[str]:
        """Run propagation to a fixed point; returns an unsat reason."""
        for _ in range(_MAX_PROPAGATION_ROUNDS):
            changed = False
            for relation in self.relations:
                outcome = self._propagate_relation(env, relation)
                if outcome is None:
                    return (f"interval propagation proves "
                            f"{relation.describe()} infeasible")
                changed = changed or outcome
            for monotone in self.monotones:
                outcome = self._propagate_monotone(env, monotone)
                if outcome is None:
                    return (f"interval propagation proves "
                            f"{monotone.describe()} infeasible")
                changed = changed or outcome
            if not changed:
                break
        return None

    # -- enumeration -------------------------------------------------------

    def solve(self, minimize: Optional[LinExpr] = None,
              node_budget: int = DEFAULT_NODE_BUDGET) -> SolveResult:
        """Propagate, then enumerate for the best (or any) model.

        With ``minimize`` the search is exhaustive and returns the
        objective-minimal model (ties broken by lexicographically
        smallest assignment in declaration order); without it the first
        model in lexicographic order is returned.  Abstains — never
        raises — on unbounded domains or a blown ``node_budget``.
        """
        if minimize is not None:
            for name in minimize.free_vars:
                if name not in self.domains:
                    return SolveResult(ABSTAIN, reason=(
                        f"objective uses undeclared variable {name!r}"))
        env = dict(self.domains)
        unsat_reason = self._propagate(env)
        if unsat_reason is not None:
            return SolveResult(UNSAT, reason=unsat_reason)
        names = list(env)
        for name in names:
            if env[name].hi is None:
                return SolveResult(ABSTAIN, reason=(
                    f"variable {name!r} has an unbounded domain after "
                    f"propagation"))

        # Constraints become checkable once their deepest variable is
        # assigned; grouping them by that level prunes dead branches at
        # the earliest sound moment.
        level_of = {name: index for index, name in enumerate(names)}
        checks_at: List[List[Callable[[Mapping[str, int]], bool]]] = [
            [] for _ in names]
        all_checks = ([(c.free_vars, c.holds) for c in self.relations]
                      + [(c.free_vars, c.holds) for c in self.monotones])
        for free_vars, holds in all_checks:
            if not free_vars:
                if not holds({}):
                    return SolveResult(UNSAT, reason=(
                        "constant constraint is false"))
                continue
            checks_at[max(level_of[name] for name in free_vars)].append(
                holds)

        best: Optional[Tuple[int, Tuple[int, ...]]] = None
        best_assignment: Dict[str, int] = {}
        assignment: Dict[str, int] = {}
        nodes = 0

        def descend(level: int) -> Optional[str]:
            """DFS one variable level; returns an abstention reason."""
            nonlocal best, best_assignment, nodes
            if level == len(names):
                if minimize is None:
                    best = (0, tuple(assignment[name] for name in names))
                    best_assignment = dict(assignment)
                    return None
                objective = minimize.evaluate(assignment)
                key = (objective,
                       tuple(assignment[name] for name in names))
                if best is None or key < best:
                    best = key
                    best_assignment = dict(assignment)
                return None
            name = names[level]
            domain = env[name]
            assert domain.hi is not None
            for value in range(domain.lo, domain.hi + 1):
                nodes += 1
                if nodes > node_budget:
                    return (f"enumeration budget exceeded "
                            f"({node_budget} nodes)")
                assignment[name] = value
                if all(check(assignment)
                       for check in checks_at[level]):
                    reason = descend(level + 1)
                    if reason is not None:
                        return reason
                    if best is not None and minimize is None:
                        return None  # first model wins
            assignment.pop(name, None)
            return None

        abstain_reason = descend(0)
        if abstain_reason is not None:
            return SolveResult(ABSTAIN, reason=abstain_reason,
                               nodes=nodes)
        if best is None:
            return SolveResult(UNSAT, nodes=nodes, reason=(
                "exhaustive enumeration found no model"))
        objective = best[0] if minimize is not None else None
        return SolveResult(
            SAT,
            assignment=tuple((name, best_assignment[name])
                             for name in names),
            objective=objective,
            nodes=nodes)
