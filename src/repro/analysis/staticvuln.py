"""Attack-input-free heap-vulnerability detection (path-sensitive lite).

The paper's offline analyzer needs an attack input to replay; this module
finds *candidate* vulnerabilities with no input at all, by abstract
interpretation of the program body.  The abstraction:

* **numbers** are linear expressions over symbols (input attributes,
  values read from memory) plus a constant interval, with a taint bit;
* **pointers** carry their allocation origin and a symbolic offset;
* **inputs** (the non-process parameters of ``main``) are opaque records
  whose attribute chains become canonical symbols — two reads of
  ``doc.declared_size`` produce the *same* symbol, so equal expressions
  can be proven equal while differing ones stay incomparable;
* branches with statically-decidable tests follow one arm (this folds
  the SAMATE variant dispatch); undecidable tests fork and join.

Per allocation origin the interpreter tracks size, free state
(no/maybe/yes) and an initialized prefix; memory operations are checked
against those facts:

* an access extent that *may* exceed the origin's size → **overflow**;
* any use of a maybe/definitely freed origin (or a re-free) →
  **use after free**;
* a read not covered by the initialized prefix → **uninitialized read**.

Over-approximation is safe by design: findings become {FUN, CCID, T}
*patches*, which are configuration — a spurious patch costs a few bytes
of padding or a deferred free, never correctness.
"""

from __future__ import annotations

import ast
import zlib
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..program.program import Program
from ..vulntypes import VulnType
from .intervals import (
    Num,
    fresh_unknown as _fresh_unknown,
    join_num,
    may_exceed,
    reset_fresh_symbols,
)
from .summaries import ALLOC_METHODS, extract_model

__all__ = [
    "Num",
    "StaticAnalysisResult",
    "StaticFinding",
    "analyze_program",
    "join_num",
    "may_exceed",
]

_DEPTH_LIMIT = 32


@dataclass(frozen=True)
class PointerVal:
    """A heap pointer: allocation origin + symbolic offset."""

    origin: int
    offset: Num


@dataclass(frozen=True)
class BytesVal:
    """A byte string of (possibly symbolic) length."""

    length: Num
    data: Optional[bytes] = None
    tainted: bool = False


@dataclass(frozen=True)
class InputVal:
    """An opaque external input; attribute chains become symbols."""

    path: str

    def num(self) -> Num:
        """This input as a tainted symbolic number (canonical by path)."""
        return Num.symbol(self.path, tainted=True)


@dataclass(frozen=True)
class ConcreteVal:
    """A resolved concrete Python object (spec fields, enums, ...)."""

    value: Any


@dataclass(frozen=True)
class ListVal:
    """A Python list of abstract values."""

    elements: Tuple[Any, ...] = ()


class _Process:
    """Sentinel: the value of the guest's ``Process`` parameter."""


PROCESS = _Process()
UNKNOWN = object()


# ---------------------------------------------------------------------------
# Findings
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class StaticFinding:
    """One candidate vulnerability, anchored at an allocation edge."""

    program: str
    vuln: VulnType
    #: Allocation API (the FUN of the eventual patch).
    fun: str
    #: Declared ``site=`` label of the allocation.
    site_label: str
    #: Guest function the allocation executes in.
    caller: str
    #: Python method/line of the allocation, for diagnostics.
    method: str
    line: int
    reason: str
    score: float

    def describe(self) -> str:
        """One-line ``[score] vuln @ caller->fun(site=...): reason``."""
        return (f"[{self.score:.2f}] {self.vuln.describe()} @ "
                f"{self.caller}->{self.fun}(site={self.site_label!r}): "
                f"{self.reason}")


@dataclass
class StaticAnalysisResult:
    """All candidates for one program, ranked best-first."""

    program_name: str
    findings: List[StaticFinding] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)

    def render(self) -> str:
        """Multi-line report: one line per candidate plus notes."""
        lines = [f"static analysis {self.program_name}: "
                 f"{len(self.findings)} candidate(s)"]
        lines.extend("  " + f.describe() for f in self.findings)
        lines.extend(f"  note: {n}" for n in self.notes)
        return "\n".join(lines)


# ---------------------------------------------------------------------------
# Interpreter internals
# ---------------------------------------------------------------------------


FREED_NO, FREED_MAYBE, FREED_YES = 0, 1, 2


@dataclass
class _Alloc:
    origin: int
    fun: str
    label: str
    caller: str
    method: str
    line: int
    size: Num
    #: Initialized prefix (grows as writes land at/before its end).
    covered: Num = field(default_factory=lambda: Num.const(0))
    covered_symbolic: List[Num] = field(default_factory=list)
    #: Origins this block grew out of via ``realloc`` (oldest first).
    chain: Tuple[int, ...] = ()


@dataclass
class _Returned:
    """A return value observed while executing a body.

    ``definite`` is True when every path through the statement returned,
    so execution of the enclosing body must stop.
    """

    value: Any
    definite: bool


class _Interp:
    """The interprocedural abstract interpreter for one program."""

    def __init__(self, program: Program) -> None:
        self.program = program
        self.graph = program.graph
        self.model = extract_model(program)
        self.module_globals = self._module_globals()
        self.allocs: Dict[int, _Alloc] = {}
        self.freed: Dict[int, int] = {}
        self.findings: List[StaticFinding] = []
        self.notes: List[str] = list(self.model.notes)
        self.guest_stack: List[str] = [self.graph.entry]
        self.method_stack: List[str] = ["main"]
        self._next_origin = 0
        self._seen: set = set()

    def _module_globals(self) -> Dict[str, Any]:
        import sys
        module = sys.modules.get(type(self.program).__module__)
        return dict(getattr(module, "__dict__", {}) or {})

    # -- findings ----------------------------------------------------------

    def _flag(self, origin: int, vuln: VulnType, reason: str,
              score: float) -> None:
        alloc = self.allocs.get(origin)
        if alloc is None:
            return
        key = (origin, vuln, reason)
        if key in self._seen:
            return
        self._seen.add(key)
        self.findings.append(StaticFinding(
            program=self.program.name, vuln=vuln, fun=alloc.fun,
            site_label=alloc.label, caller=alloc.caller,
            method=alloc.method, line=alloc.line, reason=reason,
            score=score))
        if vuln is VulnType.UNINIT_READ:
            # Bytes preserved across realloc stay uninitialized unless
            # the *original* allocation is zero-filled as well.
            for previous in alloc.chain:
                self._flag(previous, vuln,
                           reason + " (block later grown by realloc)",
                           score)

    # -- entry -------------------------------------------------------------

    def run(self) -> None:
        info = self.model.methods.get("main")
        if info is None:
            self.notes.append("no inspectable main(); nothing to analyze")
            return
        params = [a.arg for a in info.func_ast.args.args
                  if a.arg != "self"]
        env: Dict[str, Any] = {}
        if params:
            env[params[0]] = PROCESS
        for index, name in enumerate(params[1:]):
            env[name] = InputVal(f"input{index}.{name}")
        self._exec_body(info.func_ast.body, env, depth=0)

    # -- method dispatch ---------------------------------------------------

    def _call_method(self, name: str, args: Sequence[Any],
                     depth: int) -> Any:
        info = self.model.methods.get(name)
        if info is None or depth > _DEPTH_LIMIT:
            return UNKNOWN
        params = [a.arg for a in info.func_ast.args.args
                  if a.arg != "self"]
        env: Dict[str, Any] = {}
        for param, value in zip(params, args):
            env[param] = value
        defaults = info.func_ast.args.defaults
        for param, default in zip(params[len(params) - len(defaults):],
                                  defaults):
            if param not in env:
                env[param] = self._eval(default, env, depth)
        self.method_stack.append(name)
        try:
            result = self._exec_body(info.func_ast.body, env, depth + 1)
        finally:
            self.method_stack.pop()
        return result.value if isinstance(result, _Returned) else None

    # -- statements --------------------------------------------------------

    def _exec_body(self, body: Sequence[Any], env: Dict[str, Any],
                   depth: int) -> Optional[_Returned]:
        pending: Optional[_Returned] = None
        for stmt in body:
            result = self._exec_stmt(stmt, env, depth)
            if isinstance(result, _Returned):
                if result.definite and pending is None:
                    return result
                if result.definite:
                    return _Returned(self._join_values(
                        pending.value, result.value), True)
                pending = result if pending is None else _Returned(
                    self._join_values(pending.value, result.value), False)
        return pending

    def _exec_stmt(self, stmt: Any, env: Dict[str, Any],
                   depth: int) -> Optional[_Returned]:
        if isinstance(stmt, ast.Return):
            value = (self._eval(stmt.value, env, depth)
                     if stmt.value is not None else None)
            return _Returned(value, True)
        if isinstance(stmt, ast.Assign):
            value = self._eval(stmt.value, env, depth)
            for target in stmt.targets:
                self._assign(target, value, env)
            return None
        if isinstance(stmt, ast.AugAssign):
            if isinstance(stmt.target, ast.Name):
                current = env.get(stmt.target.id, UNKNOWN)
                operand = self._eval(stmt.value, env, depth)
                env[stmt.target.id] = self._binop(
                    current, stmt.op, operand)
            return None
        if isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            value = self._eval(stmt.value, env, depth)
            self._assign(stmt.target, value, env)
            return None
        if isinstance(stmt, ast.Expr):
            self._eval(stmt.value, env, depth)
            return None
        if isinstance(stmt, ast.If):
            return self._exec_if(stmt, env, depth)
        if isinstance(stmt, (ast.For, ast.While)):
            return self._exec_loop(stmt, env, depth)
        if isinstance(stmt, ast.Try):
            result = self._exec_body(stmt.body, env, depth)
            self._exec_body(stmt.finalbody, env, depth)
            return result
        if isinstance(stmt, (ast.Pass, ast.Import, ast.ImportFrom,
                             ast.FunctionDef, ast.ClassDef)):
            return None
        for child in ast.iter_child_nodes(stmt):
            if isinstance(child, ast.expr):
                self._eval(child, env, depth)
        return None

    def _assign(self, target: Any, value: Any, env: Dict[str, Any]) -> None:
        if isinstance(target, ast.Name):
            env[target.id] = value
        elif isinstance(target, (ast.Tuple, ast.List)):
            if isinstance(value, ListVal):
                for element, sub in zip(target.elts, value.elements):
                    self._assign(element, sub, env)
            else:
                for element in target.elts:
                    self._assign(element, UNKNOWN, env)

    def _exec_if(self, stmt: ast.If, env: Dict[str, Any],
                 depth: int) -> Any:
        verdict = self._truth(self._eval(stmt.test, env, depth))
        if verdict is True:
            return self._exec_body(stmt.body, env, depth)
        if verdict is False:
            return self._exec_body(stmt.orelse, env, depth)
        # Fork: both arms from the same state, then join.
        freed_before = dict(self.freed)
        env_true = dict(env)
        result_true = self._exec_body(stmt.body, env_true, depth)
        freed_true = self.freed
        self.freed = freed_before
        env_false = dict(env)
        result_false = self._exec_body(stmt.orelse, env_false, depth)
        self.freed = self._join_freed(freed_true, self.freed)
        for name in set(env_true) | set(env_false):
            a, b = env_true.get(name), env_false.get(name)
            env[name] = a if a == b else self._join_values(a, b)
        if result_true is None and result_false is None:
            return None
        if result_true is None or result_false is None:
            partial = result_true or result_false
            return _Returned(partial.value, False)  # type: ignore[union-attr]
        return _Returned(
            self._join_values(result_true.value, result_false.value),
            result_true.definite and result_false.definite)

    @staticmethod
    def _join_freed(a: Dict[int, int], b: Dict[int, int]) -> Dict[int, int]:
        joined = dict(a)
        for origin, state in b.items():
            other = joined.get(origin, FREED_NO)
            joined[origin] = (state if state == other else FREED_MAYBE)
        for origin in set(a) - set(b):
            if a[origin] != FREED_NO:
                joined[origin] = FREED_MAYBE if a[origin] != b.get(
                    origin, FREED_NO) else a[origin]
        return joined

    def _join_values(self, a: Any, b: Any) -> Any:
        if a == b:
            return a
        if isinstance(a, Num) and isinstance(b, Num):
            return join_num(a, b)
        if (isinstance(a, PointerVal) and isinstance(b, PointerVal)
                and a.origin == b.origin):
            return PointerVal(a.origin, join_num(a.offset, b.offset))
        if a is None:
            return b
        if b is None:
            return a
        return UNKNOWN

    def _exec_loop(self, stmt: Any, env: Dict[str, Any],
                   depth: int) -> Any:
        if isinstance(stmt, ast.For):
            iterable = self._eval(stmt.iter, env, depth)
            if isinstance(stmt.target, ast.Name):
                env[stmt.target.id] = self._loop_var(iterable)
        else:
            self._eval(stmt.test, env, depth)
        # One symbolic pass over the body (loop variables already carry
        # their maximal extent, see _loop_var).
        freed_before = dict(self.freed)
        result = self._exec_body(stmt.body, env, depth)
        self.freed = self._join_freed(freed_before, self.freed)
        if isinstance(result, _Returned):
            return _Returned(result.value, False)
        return None

    @staticmethod
    def _loop_var(iterable: Any) -> Any:
        # range(n) -> the last index, n - 1, keeping linearity so a write
        # at base + i*stride has provable maximal extent.
        if isinstance(iterable, tuple) and len(iterable) == 2 \
                and iterable[0] == "range":
            bound = iterable[1]
            if isinstance(bound, Num):
                return bound.sub(Num.const(1))
        if isinstance(iterable, InputVal):
            return InputVal(f"{iterable.path}[*]")
        if isinstance(iterable, ListVal) and iterable.elements:
            first = iterable.elements[0]
            joined = first
            for element in iterable.elements[1:]:
                joined = first if element == first else UNKNOWN
            return joined
        if isinstance(iterable, ConcreteVal):
            try:
                items = list(iterable.value)
                if items:
                    return ConcreteVal(items[0])
            except TypeError:
                pass
        return UNKNOWN

    # -- expression evaluation --------------------------------------------

    def _truth(self, value: Any) -> Optional[bool]:
        if isinstance(value, ConcreteVal):
            try:
                return bool(value.value)
            except Exception:
                return None
        if isinstance(value, Num) and value.exact is not None \
                and not value.tainted:
            return bool(value.exact)
        if isinstance(value, BytesVal) and value.data is not None:
            return bool(value.data)
        return None

    def _eval(self, node: Any, env: Dict[str, Any], depth: int) -> Any:
        concrete = self._try_concrete(node, env)
        if concrete is not _NO:
            return self._wrap(concrete)
        if isinstance(node, ast.Name):
            return env.get(node.id, UNKNOWN)
        if isinstance(node, ast.Constant):
            return self._wrap(node.value)
        if isinstance(node, ast.BinOp):
            left = self._eval(node.left, env, depth)
            right = self._eval(node.right, env, depth)
            return self._binop(left, node.op, right)
        if isinstance(node, ast.UnaryOp):
            operand = self._eval(node.operand, env, depth)
            if isinstance(node.op, ast.USub) and isinstance(operand, Num):
                return Num.const(0).sub(operand)
            if isinstance(node.op, ast.Not):
                verdict = self._truth(operand)
                if verdict is not None:
                    return self._wrap(not verdict)
            return UNKNOWN
        if isinstance(node, ast.IfExp):
            verdict = self._truth(self._eval(node.test, env, depth))
            if verdict is True:
                return self._eval(node.body, env, depth)
            if verdict is False:
                return self._eval(node.orelse, env, depth)
            return self._join_values(self._eval(node.body, env, depth),
                                     self._eval(node.orelse, env, depth))
        if isinstance(node, ast.Attribute):
            return self._attribute(node, env, depth)
        if isinstance(node, ast.Call):
            return self._eval_call(node, env, depth)
        if isinstance(node, ast.Compare):
            return UNKNOWN
        if isinstance(node, (ast.List, ast.Tuple)):
            return ListVal(tuple(self._eval(e, env, depth)
                                 for e in node.elts))
        if isinstance(node, ast.Subscript):
            return self._subscript(node, env, depth)
        if isinstance(node, ast.JoinedStr):
            return UNKNOWN
        return UNKNOWN

    def _wrap(self, value: Any) -> Any:
        if isinstance(value, bool):
            return ConcreteVal(value)
        if isinstance(value, int):
            return Num.const(value)
        if isinstance(value, bytes):
            return BytesVal(Num.const(len(value)), value)
        return ConcreteVal(value)

    def _binop(self, left: Any, op: Any, right: Any) -> Any:
        if isinstance(left, PointerVal) and isinstance(right, Num):
            if isinstance(op, ast.Add):
                return PointerVal(left.origin, left.offset.add(right))
            if isinstance(op, ast.Sub):
                return PointerVal(left.origin, left.offset.sub(right))
        if isinstance(left, Num) and isinstance(right, PointerVal) \
                and isinstance(op, ast.Add):
            return PointerVal(right.origin, right.offset.add(left))
        if isinstance(left, Num) and isinstance(right, Num):
            if isinstance(op, ast.Add):
                return left.add(right)
            if isinstance(op, ast.Sub):
                return left.sub(right)
            if isinstance(op, ast.Mult):
                return left.mul(right)
            if isinstance(op, (ast.FloorDiv, ast.Mod, ast.BitAnd)):
                if left.exact is not None and right.exact is not None:
                    table = {ast.FloorDiv: lambda a, b: a // b,
                             ast.Mod: lambda a, b: a % b,
                             ast.BitAnd: lambda a, b: a & b}
                    try:
                        return Num.const(table[type(op)](left.exact,
                                                         right.exact))
                    except ZeroDivisionError:
                        return UNKNOWN
                return _fresh_unknown(left.tainted or right.tainted)
        num = self._as_num(left)
        other = self._as_num(right)
        if num is not None and other is not None:
            if isinstance(op, ast.Add):
                return num.add(other)
            if isinstance(op, ast.Sub):
                return num.sub(other)
            if isinstance(op, ast.Mult):
                return num.mul(other)
        # Byte-string arithmetic: concatenation and repetition sizes.
        lb, rb = self._as_bytes(left), self._as_bytes(right)
        if isinstance(op, ast.Add) and lb is not None and rb is not None:
            return BytesVal(lb.length.add(rb.length),
                            tainted=lb.tainted or rb.tainted)
        if isinstance(op, ast.Mult):
            if lb is not None and isinstance(right, Num):
                return BytesVal(lb.length.mul(right),
                                tainted=lb.tainted or right.tainted)
            if rb is not None and isinstance(left, Num):
                return BytesVal(rb.length.mul(left),
                                tainted=rb.tainted or left.tainted)
        return UNKNOWN

    def _as_num(self, value: Any) -> Optional[Num]:
        if isinstance(value, Num):
            return value
        if isinstance(value, InputVal):
            return value.num()
        if isinstance(value, ConcreteVal) and isinstance(value.value, int):
            return Num.const(value.value)
        return None

    def _as_bytes(self, value: Any) -> Optional[BytesVal]:
        if isinstance(value, BytesVal):
            return value
        if isinstance(value, InputVal):
            return BytesVal(Num.symbol(f"len({value.path})"),
                            tainted=True)
        if isinstance(value, ConcreteVal) \
                and isinstance(value.value, (bytes, str)):
            raw = value.value if isinstance(value.value, bytes) \
                else value.value.encode()
            return BytesVal(Num.const(len(raw)), raw)
        return None

    def _attribute(self, node: ast.Attribute, env: Dict[str, Any],
                   depth: int) -> Any:
        base = self._eval(node.value, env, depth)
        if isinstance(base, InputVal):
            return InputVal(f"{base.path}.{node.attr}")
        if isinstance(base, ConcreteVal):
            try:
                return self._wrap(getattr(base.value, node.attr))
            except AttributeError:
                return UNKNOWN
        if isinstance(base, BytesVal) or base is UNKNOWN:
            # .data on a tainted register value, etc.
            if node.attr == "data" and isinstance(base, BytesVal):
                return base
        return UNKNOWN

    def _subscript(self, node: ast.Subscript, env: Dict[str, Any],
                   depth: int) -> Any:
        base = self._eval(node.value, env, depth)
        if isinstance(base, BytesVal) and isinstance(node.slice, ast.Slice):
            lower = (self._eval(node.slice.lower, env, depth)
                     if node.slice.lower else Num.const(0))
            upper = (self._eval(node.slice.upper, env, depth)
                     if node.slice.upper else base.length)
            if isinstance(lower, Num) and isinstance(upper, Num):
                return BytesVal(upper.sub(lower), tainted=base.tainted)
        if isinstance(base, ListVal):
            index = self._eval(node.slice, env, depth)
            if isinstance(index, Num) and index.exact is not None \
                    and 0 <= index.exact < len(base.elements):
                return base.elements[index.exact]
        if isinstance(base, InputVal):
            return InputVal(f"{base.path}[*]")
        return UNKNOWN

    # -- calls: process ops, helpers, builtins ----------------------------

    def _eval_call(self, node: ast.Call, env: Dict[str, Any],
                   depth: int) -> Any:
        func = node.func
        if isinstance(func, ast.Attribute):
            if isinstance(func.value, ast.Name) \
                    and func.value.id == "int" \
                    and func.attr == "from_bytes":
                # Decoding attacker bytes: one stable tainted symbol per
                # call site, so reuses of the decoded value stay equal.
                raw = self._eval(node.args[0], env, depth) \
                    if node.args else UNKNOWN
                tainted = not (isinstance(raw, BytesVal)
                               and raw.data is not None
                               and not raw.tainted)
                return Num.symbol(
                    f"frombytes@{getattr(node, 'lineno', 0)}:"
                    f"{getattr(node, 'col_offset', 0)}", tainted=tainted)
            base = self._eval(func.value, env, depth)
            if base is PROCESS:
                return self._process_op(func.attr, node, env, depth)
            if isinstance(func.value, ast.Name) \
                    and func.value.id == "self":
                args = [self._eval(a, env, depth) for a in node.args]
                return self._call_method(func.attr, args, depth)
            if isinstance(base, ListVal):
                return self._list_op(base, func, node, env, depth)
            if isinstance(base, InputVal):
                return InputVal(f"{base.path}.{func.attr}()")
            if isinstance(base, Num) and func.attr == "to_bytes":
                size = self._eval(node.args[0], env, depth) \
                    if node.args else Num.const(8)
                if isinstance(size, Num):
                    return BytesVal(size, tainted=base.tainted)
            if isinstance(base, BytesVal) and func.attr == "to_int":
                return _fresh_unknown(tainted=True)
            if base is UNKNOWN and func.attr in ("to_int",):
                return _fresh_unknown(tainted=True)
            return UNKNOWN
        if isinstance(func, ast.Name):
            return self._builtin(func.id, node, env, depth)
        return UNKNOWN

    def _list_op(self, base: ListVal, func: ast.Attribute, node: ast.Call,
                 env: Dict[str, Any], depth: int) -> Any:
        args = [self._eval(a, env, depth) for a in node.args]
        holder = func.value
        if func.attr == "append" and isinstance(holder, ast.Name):
            env[holder.id] = ListVal(base.elements + (args[0],))
            return None
        if func.attr == "pop" and isinstance(holder, ast.Name):
            elements = list(base.elements)
            index = -1
            if args and isinstance(args[0], Num) \
                    and args[0].exact is not None:
                index = args[0].exact
            popped = UNKNOWN
            if elements and -len(elements) <= index < len(elements):
                popped = elements.pop(index)
            env[holder.id] = ListVal(tuple(elements))
            return popped
        return UNKNOWN

    def _builtin(self, name: str, node: ast.Call, env: Dict[str, Any],
                 depth: int) -> Any:
        args = [self._eval(a, env, depth) for a in node.args]
        if name == "len" and args:
            as_bytes = self._as_bytes(args[0])
            if as_bytes is not None:
                return as_bytes.length
            if isinstance(args[0], ListVal):
                return Num.const(len(args[0].elements))
            if isinstance(args[0], InputVal):
                return Num.symbol(f"len({args[0].path})", tainted=True)
            return _fresh_unknown()
        if name == "range" and args:
            bound = self._as_num(args[-1])
            return ("range", bound if bound is not None
                    else _fresh_unknown())
        if name in ("max", "min") and args:
            nums = [self._as_num(a) for a in args]
            if all(n is not None for n in nums):
                exacts = [n.exact for n in nums]  # type: ignore[union-attr]
                if all(e is not None for e in exacts):
                    fn = max if name == "max" else min
                    return Num.const(fn(exacts))  # type: ignore[arg-type]
                key = ast.dump(node)
                tainted = any(n.tainted for n in nums)  # type: ignore
                # crc32, not hash(): PYTHONHASHSEED randomizes str hashes
                # across processes, and these names reach --json output.
                digest = zlib.crc32(key.encode()) & 0xffff
                return Num.symbol(f"{name}#{digest:x}", tainted=tainted)
        if name == "int" and args:
            num = self._as_num(args[0])
            if num is not None:
                return num
        if name in ("list", "tuple") and args \
                and isinstance(args[0], ListVal):
            return args[0]
        if name == "bytes" and args and isinstance(args[0], ListVal):
            return BytesVal(Num.const(len(args[0].elements)))
        return UNKNOWN

    # -- process semantics -------------------------------------------------

    def _process_op(self, op: str, node: ast.Call, env: Dict[str, Any],
                    depth: int) -> Any:
        if op == "call":
            return self._guest_call(node, env, depth)
        if op in ALLOC_METHODS:
            return self._heap_alloc(op, node, env, depth)
        if op == "free":
            self._heap_free(self._eval(node.args[0], env, depth))
            return None
        args = [self._eval(a, env, depth) for a in node.args]
        if op in ("read", "read_int"):
            pointer = args[0] if args else UNKNOWN
            size = (self._as_num(args[1]) if len(args) > 1
                    else Num.const(8)) or Num.const(8)
            self._access(pointer, size, writes=False, why=f"p.{op}")
            return BytesVal(size, tainted=True)
        if op == "syscall_out":
            pointer = args[0] if args else UNKNOWN
            size = (self._as_num(args[1]) if len(args) > 1
                    else None) or _fresh_unknown()
            self._access(pointer, size, writes=False, why="p.syscall_out",
                         leaks=True)
            return BytesVal(size, tainted=True)
        if op == "syscall_in":
            # A bounded receive: initializes, never treated as an
            # overflow write (like read(2) into a sized buffer).
            pointer = args[0] if args else UNKNOWN
            data = self._as_bytes(args[1]) if len(args) > 1 else None
            length = data.length if data is not None else _fresh_unknown()
            self._initialize(pointer, length)
            self._use_after_free_check(pointer, "p.syscall_in")
            return None
        if op == "write":
            pointer = args[0] if args else UNKNOWN
            data = self._as_bytes(args[1]) if len(args) > 1 else None
            length = data.length if data is not None else _fresh_unknown()
            self._access(pointer, length, writes=True, why="p.write")
            return None
        if op == "write_int":
            pointer = args[0] if args else UNKNOWN
            size = (self._as_num(args[2]) if len(args) > 2
                    else Num.const(8)) or Num.const(8)
            self._access(pointer, size, writes=True, why="p.write_int")
            return None
        if op == "fill":
            pointer = args[0] if args else UNKNOWN
            size = (self._as_num(args[1]) if len(args) > 1
                    else None) or _fresh_unknown()
            self._access(pointer, size, writes=True, why="p.fill")
            return None
        if op == "copy":
            dst = args[0] if args else UNKNOWN
            src = args[1] if len(args) > 1 else UNKNOWN
            size = (self._as_num(args[2]) if len(args) > 2
                    else None) or _fresh_unknown()
            self._access(src, size, writes=False, why="p.copy source")
            self._access(dst, size, writes=True, why="p.copy dest")
            return None
        if op in ("branch_on", "use_as_address"):
            return _fresh_unknown(tainted=True)
        return UNKNOWN

    def _guest_call(self, node: ast.Call, env: Dict[str, Any],
                    depth: int) -> Any:
        callee = self._eval(node.args[0], env, depth) if node.args \
            else UNKNOWN
        guest = None
        if isinstance(callee, ConcreteVal) \
                and isinstance(callee.value, str):
            guest = callee.value
        target = node.args[1] if len(node.args) > 1 else None
        method = None
        if isinstance(target, ast.Attribute) \
                and isinstance(target.value, ast.Name) \
                and target.value.id == "self":
            method = target.attr
        args: List[Any] = [PROCESS]
        args.extend(self._eval(a, env, depth) for a in node.args[2:])
        for keyword in node.keywords:
            if keyword.arg != "site":
                args.append(self._eval(keyword.value, env, depth))
        if method is None:
            self.notes.append("p.call with non-static function target; "
                              "callee body skipped")
            return UNKNOWN
        self.guest_stack.append(guest if guest is not None
                                else f"?{method}")
        try:
            return self._call_method(method, args, depth)
        finally:
            self.guest_stack.pop()

    def _heap_alloc(self, fun: str, node: ast.Call, env: Dict[str, Any],
                    depth: int) -> Any:
        args = [self._eval(a, env, depth) for a in node.args]
        label = ""
        for keyword in node.keywords:
            if keyword.arg == "site":
                value = self._eval(keyword.value, env, depth)
                if isinstance(value, ConcreteVal) \
                        and isinstance(value.value, str):
                    label = value.value
        if fun == "calloc" and len(args) >= 2:
            nmemb = self._as_num(args[0]) or _fresh_unknown()
            unit = self._as_num(args[1]) or _fresh_unknown()
            size = nmemb.mul(unit)
        elif fun == "realloc" and len(args) >= 2:
            old = args[0] if isinstance(args[0], PointerVal) else None
            self._heap_free(args[0], refree_ok=True)
            size = self._as_num(args[1]) or _fresh_unknown()
        elif fun in ("memalign", "aligned_alloc", "posix_memalign") \
                and len(args) >= 2:
            size = self._as_num(args[1]) or _fresh_unknown()
        else:
            size = (self._as_num(args[0]) if args
                    else None) or _fresh_unknown()
        origin = self._next_origin
        self._next_origin += 1
        caller = self.guest_stack[-1]
        alloc = _Alloc(origin=origin, fun=fun, label=label, caller=caller,
                       method=self.method_stack[-1],
                       line=getattr(node, "lineno", 0), size=size)
        self.allocs[origin] = alloc
        self.freed[origin] = FREED_NO
        # calloc zero-initializes; others start uninitialized.
        if fun == "calloc":
            alloc.covered = size
            alloc.covered_symbolic.append(size)
        elif fun == "realloc":
            # realloc preserves the old block's contents (and its
            # *un*-initialized holes); remember the lineage so uninit
            # findings patch the originating allocation too.
            previous = self.allocs.get(old.origin) if old else None
            if previous is not None:
                alloc.covered = previous.covered
                alloc.covered_symbolic = list(previous.covered_symbolic)
                alloc.chain = previous.chain + (previous.origin,)
        return PointerVal(origin, Num.const(0))

    def _heap_free(self, pointer: Any, refree_ok: bool = False) -> None:
        if not isinstance(pointer, PointerVal):
            return
        state = self.freed.get(pointer.origin, FREED_NO)
        if state != FREED_NO and not refree_ok:
            score = 0.95 if state == FREED_YES else 0.75
            self._flag(pointer.origin, VulnType.USE_AFTER_FREE,
                       "pointer may already be freed when freed again "
                       "(double free)", score)
        self.freed[pointer.origin] = FREED_YES

    def _use_after_free_check(self, pointer: Any, why: str) -> None:
        if not isinstance(pointer, PointerVal):
            return
        state = self.freed.get(pointer.origin, FREED_NO)
        if state == FREED_YES:
            self._flag(pointer.origin, VulnType.USE_AFTER_FREE,
                       f"{why} on a freed allocation", 0.95)
        elif state == FREED_MAYBE:
            self._flag(pointer.origin, VulnType.USE_AFTER_FREE,
                       f"{why} on an allocation freed on some path",
                       0.75)

    def _initialize(self, pointer: Any, length: Num) -> None:
        if not isinstance(pointer, PointerVal):
            return
        alloc = self.allocs.get(pointer.origin)
        if alloc is None:
            return
        end = pointer.offset.add(length)
        alloc.covered_symbolic.append(end)
        start_ok = (pointer.offset.concrete
                    and pointer.offset.hi <= alloc.covered.hi) \
            or pointer.offset == alloc.covered
        if start_ok:
            if end.concrete and alloc.covered.concrete:
                if end.lo > alloc.covered.lo:
                    alloc.covered = Num((), end.lo, end.lo)
            else:
                alloc.covered = end

    def _access(self, pointer: Any, length: Num, writes: bool, why: str,
                leaks: bool = False) -> None:
        if not isinstance(pointer, PointerVal):
            return
        self._use_after_free_check(pointer, why)
        alloc = self.allocs.get(pointer.origin)
        if alloc is None:
            return
        extent = pointer.offset.add(length)
        reason = may_exceed(extent, alloc.size)
        if reason is not None:
            if extent.concrete:
                score = 0.95
            elif extent.tainted:
                score = 0.85
            else:
                score = 0.65
            self._flag(pointer.origin, VulnType.OVERFLOW,
                       f"{why}: {reason}", score)
        if writes:
            self._initialize(pointer, length)
        else:
            self._check_initialized(alloc, extent, why, leaks)

    def _check_initialized(self, alloc: _Alloc, extent: Num, why: str,
                           leaks: bool) -> None:
        if extent.concrete and alloc.covered.concrete \
                and alloc.covered.lo >= extent.hi:
            return
        for end in alloc.covered_symbolic:
            if end == extent:
                return
            gap = end.sub(extent)
            if gap.concrete and gap.lo >= 0:
                return
        if extent.concrete and not alloc.covered.concrete:
            return
        if extent.concrete and alloc.covered_symbolic \
                and not all(e.concrete for e in alloc.covered_symbolic):
            return
        verb = "leaks" if leaks else "reads"
        if not alloc.covered_symbolic and alloc.covered.hi == 0:
            self._flag(alloc.origin, VulnType.UNINIT_READ,
                       f"{why} {verb} a never-initialized allocation",
                       0.8)
        elif extent.concrete and alloc.covered.concrete:
            self._flag(alloc.origin, VulnType.UNINIT_READ,
                       f"{why} {verb} up to byte {extent.hi} but only "
                       f"{alloc.covered.lo} byte(s) are surely "
                       f"initialized", 0.85)
        else:
            self._flag(alloc.origin, VulnType.UNINIT_READ,
                       f"{why} {verb} {extent.describe()} bytes; "
                       f"initialized prefix is "
                       f"{alloc.covered.describe()} and cannot be "
                       f"proven to cover it", 0.6)

    # -- concrete pre-evaluation ------------------------------------------

    def _try_concrete(self, node: Any, env: Dict[str, Any]) -> Any:
        """Resolve a side-effect-free expression to a concrete object."""
        try:
            return self._concrete(node, env)
        except _NotConcrete:
            return _NO

    def _concrete(self, node: Any, env: Dict[str, Any]) -> Any:
        if isinstance(node, ast.Constant):
            return node.value
        if isinstance(node, ast.Name):
            if node.id == "self":
                return self.program
            if node.id in env:
                value = env[node.id]
                if isinstance(value, ConcreteVal):
                    return value.value
                if isinstance(value, Num) and value.exact is not None \
                        and not value.tainted:
                    return value.exact
                if isinstance(value, BytesVal) and value.data is not None:
                    return value.data
                raise _NotConcrete
            if node.id in self.module_globals:
                return self.module_globals[node.id]
            raise _NotConcrete
        if isinstance(node, ast.Attribute):
            base = self._concrete(node.value, env)
            try:
                return getattr(base, node.attr)
            except AttributeError:
                raise _NotConcrete from None
        if isinstance(node, ast.BinOp):
            left = self._concrete(node.left, env)
            right = self._concrete(node.right, env)
            return _BINOPS[type(node.op)](left, right)
        if isinstance(node, ast.UnaryOp):
            operand = self._concrete(node.operand, env)
            if isinstance(node.op, ast.USub):
                return -operand
            if isinstance(node.op, ast.Not):
                return not operand
            raise _NotConcrete
        if isinstance(node, ast.Compare) and len(node.ops) == 1:
            left = self._concrete(node.left, env)
            right = self._concrete(node.comparators[0], env)
            return _CMPOPS[type(node.ops[0])](left, right)
        if isinstance(node, ast.BoolOp):
            values = [self._concrete(v, env) for v in node.values]
            if isinstance(node.op, ast.And):
                result: Any = True
                for value in values:
                    result = value
                    if not value:
                        break
                return result
            for value in values:
                if value:
                    return value
            return values[-1]
        if isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Name) \
                    and func.id in ("len", "max", "min", "abs", "bytes",
                                    "int", "sum", "tuple", "range"):
                args = [self._concrete(a, env) for a in node.args]
                if func.id == "range":
                    raise _NotConcrete
                return {"len": len, "max": max, "min": min, "abs": abs,
                        "bytes": bytes, "int": int, "sum": sum,
                        "tuple": tuple}[func.id](*args)
            if isinstance(func, ast.Attribute):
                base = self._concrete(func.value, env)
                if isinstance(base, (int, bytes, str)) \
                        and func.attr in ("to_bytes", "from_bytes",
                                          "encode", "upper", "lower"):
                    args = [self._concrete(a, env) for a in node.args]
                    return getattr(base, func.attr)(*args)
            raise _NotConcrete
        if isinstance(node, (ast.Tuple, ast.List)):
            return [self._concrete(e, env) for e in node.elts]
        if isinstance(node, ast.JoinedStr):
            parts = []
            for piece in node.values:
                if isinstance(piece, ast.Constant):
                    parts.append(str(piece.value))
                elif isinstance(piece, ast.FormattedValue):
                    parts.append(str(self._concrete(piece.value, env)))
                else:
                    raise _NotConcrete
            return "".join(parts)
        if isinstance(node, ast.Subscript):
            base = self._concrete(node.value, env)
            if isinstance(node.slice, ast.Slice):
                lower = (self._concrete(node.slice.lower, env)
                         if node.slice.lower else None)
                upper = (self._concrete(node.slice.upper, env)
                         if node.slice.upper else None)
                return base[lower:upper]
            return base[self._concrete(node.slice, env)]
        raise _NotConcrete


class _NotConcrete(Exception):
    pass


_NO = object()

_BINOPS = {
    ast.Add: lambda a, b: a + b,
    ast.Sub: lambda a, b: a - b,
    ast.Mult: lambda a, b: a * b,
    ast.FloorDiv: lambda a, b: a // b,
    ast.Mod: lambda a, b: a % b,
    ast.BitAnd: lambda a, b: a & b,
    ast.BitOr: lambda a, b: a | b,
    ast.BitXor: lambda a, b: a ^ b,
    ast.LShift: lambda a, b: a << b,
    ast.RShift: lambda a, b: a >> b,
    ast.Pow: lambda a, b: a ** b,
}

_CMPOPS = {
    ast.Eq: lambda a, b: a == b,
    ast.NotEq: lambda a, b: a != b,
    ast.Lt: lambda a, b: a < b,
    ast.LtE: lambda a, b: a <= b,
    ast.Gt: lambda a, b: a > b,
    ast.GtE: lambda a, b: a >= b,
    ast.Is: lambda a, b: a is b,
    ast.IsNot: lambda a, b: a is not b,
    ast.In: lambda a, b: a in b,
    ast.NotIn: lambda a, b: a not in b,
}


def _finding_order(finding: StaticFinding) -> Tuple:
    """Total order over findings: best score first, then every field.

    Including *all* fields (vuln kind, method, line, reason) makes the
    order a strict total order, so ``--json`` output is byte-identical
    across runs and across PYTHONHASHSEED values.
    """
    return (-finding.score, finding.caller, finding.fun,
            finding.site_label, int(finding.vuln), finding.method,
            finding.line, finding.reason)


def analyze_program(program: Program) -> StaticAnalysisResult:
    """Run the abstract interpreter over ``program`` and rank findings."""
    # Restart the ?uN numbering so repeated analyses of the same program
    # produce identical symbol names in reasons and notes.
    reset_fresh_symbols()
    interp = _Interp(program)
    try:
        interp.run()
    except RecursionError:
        interp.notes.append("analysis aborted: recursion limit")
    findings = _dedupe(interp.findings)
    findings.sort(key=_finding_order)
    return StaticAnalysisResult(program_name=program.name,
                                findings=findings, notes=interp.notes)


def _dedupe(findings: List[StaticFinding]) -> List[StaticFinding]:
    best: Dict[Tuple[str, str, str, VulnType], StaticFinding] = {}
    for finding in findings:
        key = (finding.caller, finding.fun, finding.site_label,
               finding.vuln)
        kept = best.get(key)
        if kept is None or finding.score > kept.score:
            best[key] = finding
    return list(best.values())
