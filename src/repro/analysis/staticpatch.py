"""Speculative {FUN, CCID, T} patches from static findings.

The bridge from :mod:`repro.analysis.staticvuln` to the online system: a
finding names a vulnerable *allocation edge* (caller, FUN, site label);
deployment needs concrete CCIDs under the deployed instrumentation plan.
Since the codec is deterministic, the CCID of every calling context that
can end at the flagged edge is computable offline — enumerate the
contexts on the static call graph, fold each through the codec, and emit
one patch per (FUN, CCID), merging vulnerability masks on collision.

Compared with the paper's dynamic generator this trades precision for
coverage: the dynamic replay patches exactly the context the attack
exercised; the static generator patches *every* context reaching the
flagged edge, because it cannot know which one the (never-seen) attack
will use.  Both produce configuration, so the cost of the extra patches
is a few bytes of padding / deferred frees on benign paths — never a
behaviour change.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from ..ccencoding.base import Codec
from ..patch.model import HeapPatch
from ..program.callgraph import CallGraphError
from ..program.program import Program
from .staticvuln import (StaticAnalysisResult, StaticFinding,
                         analyze_program)

#: Safety valve for context enumeration on large graphs.
DEFAULT_CONTEXT_LIMIT = 100_000


@dataclass
class StaticPatchResult:
    """Outcome of one attack-input-free patch generation."""

    program_name: str
    analysis: StaticAnalysisResult
    #: Ranked speculative patches (best-scored finding first).
    patches: List[HeapPatch] = field(default_factory=list)
    #: (fun, ccid) -> score of the best finding that produced it.
    scores: Dict[Tuple[str, int], float] = field(default_factory=dict)
    #: Findings that could not be lowered to patches, with the reason.
    skipped: List[Tuple[StaticFinding, str]] = field(default_factory=list)

    @property
    def detected(self) -> bool:
        """True when at least one candidate lowered to a patch."""
        return bool(self.patches)

    @property
    def findings(self) -> List[StaticFinding]:
        """The underlying analysis findings (ranked best-first)."""
        return self.analysis.findings

    def render(self) -> str:
        """Multi-line report: ranked patches, skips, and notes."""
        lines = [f"static patches {self.program_name}: "
                 f"{len(self.patches)} patch(es) from "
                 f"{len(self.findings)} finding(s)"]
        for patch in self.patches:
            score = self.scores.get(patch.key, 0.0)
            lines.append(f"  [{score:.2f}] {patch.render()}")
        for finding, reason in self.skipped:
            lines.append(f"  skipped {finding.describe()}: {reason}")
        lines.extend(f"  note: {n}" for n in self.analysis.notes)
        return "\n".join(lines)


class StaticPatchGenerator:
    """Derives speculative patches without replaying any attack input.

    The counterpart of
    :class:`~repro.patch.generator.OfflinePatchGenerator`: same inputs
    (program + deployed codec), same output type (ranked
    :class:`~repro.patch.model.HeapPatch` lists), no attack replay.
    """

    def __init__(self, program: Program, codec: Codec,
                 context_limit: int = DEFAULT_CONTEXT_LIMIT) -> None:
        self.program = program
        self.codec = codec
        self.context_limit = context_limit

    def generate(self) -> StaticPatchResult:
        """Analyze the program and lower every finding to patches."""
        analysis = analyze_program(self.program)
        result = StaticPatchResult(program_name=self.program.name,
                                   analysis=analysis)
        graph = self.program.graph
        merged: Dict[Tuple[str, int], HeapPatch] = {}
        for finding in analysis.findings:
            try:
                edge = graph.site(finding.caller, finding.fun,
                                  finding.site_label)
            except CallGraphError as exc:
                result.skipped.append((finding, f"no declared edge: {exc}"))
                continue
            if not graph.is_acyclic():
                result.skipped.append(
                    (finding, "recursive call graph: contexts cannot be "
                              "enumerated statically"))
                continue
            contexts = graph.enumerate_contexts(
                finding.fun, limit=self.context_limit)
            ending_here = [context for context in contexts
                           if context and context[-1] == edge]
            if not ending_here:
                result.skipped.append(
                    (finding, "allocation edge unreachable from entry"))
                continue
            for context in ending_here:
                ccid = self.codec.encode_path(context)
                key = (finding.fun, ccid)
                existing = merged.get(key)
                if existing is not None:
                    merged[key] = HeapPatch(finding.fun, ccid,
                                            existing.vuln | finding.vuln,
                                            existing.params)
                else:
                    merged[key] = HeapPatch(finding.fun, ccid,
                                            finding.vuln)
                score = result.scores.get(key, 0.0)
                result.scores[key] = max(score, finding.score)
        result.patches = sorted(
            merged.values(),
            key=lambda p: (-result.scores.get(p.key, 0.0), p.fun, p.ccid))
        return result
