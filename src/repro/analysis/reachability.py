"""Heap-reachability analysis: the static pre-pass over instrumentation.

The targeting strategies of :mod:`repro.ccencoding.targeting` already
prune by *backward* reachability (can this edge reach an allocation?).
Compiler-side static analysis can go further without an attack input, in
the spirit of CAMP/ShadowBound-style check elimination:

* **dead-code pruning** — an edge whose caller cannot be reached from the
  program entry lies on no feasible calling context, so instrumenting it
  buys nothing.  Dropping it is trivially sound: real contexts traverse
  entry-reachable sites only, hence every instrumented subsequence is
  unchanged.
* **default-edge elision** — at each caller, *one* of its instrumented
  out-edges may stay uninstrumented (the "default branch", as in
  Ball–Larus numbering).  For two distinct contexts of the same target,
  look at their first divergence node ``n``: the two divergent edges are
  both in the strategy's site set (both suffixes reach the target), and
  at most one of them is ``n``'s elided default, so at least one is still
  recorded — on an acyclic graph a path never revisits ``n``, so the
  recorded subsequences differ.  Cyclic graphs revisit nodes and void the
  argument, so elision is only applied when the graph is acyclic.

Both transformations shrink every strategy's instrumented-site set (the
result is always a subset of the input selection), directly improving the
Table III size-increase numbers while preserving the distinguishability
invariant the property tests check.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, Set, Tuple

from ..program.callgraph import CallGraph


@dataclass(frozen=True)
class HeapReachability:
    """The static reachability facts one graph + target set induce."""

    #: Functions reachable from the program entry (forward).
    live_functions: FrozenSet[str]
    #: Functions from which some allocation target is reachable (backward).
    heap_reaching: FrozenSet[str]
    #: Functions on some entry -> target path (the heap-relevant core).
    heap_core: FrozenSet[str]
    #: Declared functions on no feasible calling context (dead code).
    dead_functions: FrozenSet[str]
    #: Site ids whose caller is live (instrumentation can ever execute).
    live_sites: FrozenSet[int]

    @property
    def core_size(self) -> int:
        """Number of functions in the heap-relevant core."""
        return len(self.heap_core)


def analyze_heap_reachability(graph: CallGraph,
                              targets: Iterable[str]) -> HeapReachability:
    """Compute forward/backward reachability facts for ``graph``."""
    live = graph.reachable_from_entry()
    reaching = graph.reachable_to(targets)
    all_functions = frozenset(graph.function_names)
    live_sites = frozenset(site.site_id for site in graph.sites
                           if site.caller in live)
    return HeapReachability(
        live_functions=frozenset(live),
        heap_reaching=frozenset(reaching),
        heap_core=frozenset(live & reaching),
        dead_functions=all_functions - live,
        live_sites=live_sites,
    )


def default_edge_per_caller(graph: CallGraph,
                            selected: FrozenSet[int]) -> FrozenSet[int]:
    """The elidable default edge of each caller: its lowest selected site.

    Choosing the minimum site id makes the elision deterministic, so the
    offline and online halves of the system (and a verification re-run)
    always agree on the pruned plan.
    """
    per_caller: Dict[str, int] = {}
    for site_id in selected:
        caller = graph.site_by_id(site_id).caller
        best = per_caller.get(caller)
        if best is None or site_id < best:
            per_caller[caller] = site_id
    return frozenset(per_caller.values())


def prune_instrumentation(graph: CallGraph, targets: Iterable[str],
                          selected: FrozenSet[int]) -> FrozenSet[int]:
    """Apply the static pre-pass to a strategy's site selection.

    Returns a subset of ``selected``: dead edges are always dropped;
    one default edge per caller is additionally elided when the graph is
    acyclic (see the module docstring for the soundness argument).
    """
    facts = analyze_heap_reachability(graph, targets)
    kept = selected & facts.live_sites
    if graph.is_acyclic():
        kept -= default_edge_per_caller(graph, frozenset(kept))
    return frozenset(kept)


def pruning_report(graph: CallGraph, targets: Iterable[str],
                   selected: FrozenSet[int]) -> Dict[str, object]:
    """Accounting row describing what the pre-pass removed and why."""
    targets = tuple(targets)
    facts = analyze_heap_reachability(graph, targets)
    dead_dropped = selected - facts.live_sites
    after_dead = selected & facts.live_sites
    elided: Set[int] = set()
    if graph.is_acyclic():
        elided = set(default_edge_per_caller(graph, frozenset(after_dead)))
    return {
        "selected": len(selected),
        "dead_code_dropped": len(dead_dropped),
        "defaults_elided": len(elided),
        "pruned": len(after_dead - elided),
        "dead_functions": len(facts.dead_functions),
        "heap_core_functions": facts.core_size,
    }


def heap_core_subgraph(graph: CallGraph,
                       targets: Iterable[str]) -> Tuple[FrozenSet[str],
                                                        FrozenSet[int]]:
    """Functions and sites on some feasible entry -> allocation path.

    The static vulnerability detector restricts its interprocedural walk
    to this core: anything outside it cannot influence a heap operation.
    """
    facts = analyze_heap_reachability(graph, targets)
    core_sites = frozenset(
        site.site_id for site in graph.sites
        if site.caller in facts.heap_core and site.callee in facts.heap_core)
    return facts.heap_core, core_sites
