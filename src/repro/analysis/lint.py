"""Program-model lint: does the declared call graph match the behaviour?

Every bundled workload declares its call graph twice — once explicitly in
``build_graph()`` and once implicitly in the ``main`` body that replays
the workload through the :class:`~repro.program.process.Process` API.
The two must agree, or the reproduction silently measures the wrong
thing: an undeclared call site raises at runtime only on the paths that
execute it, an unreachable declared edge inflates every instrumentation
count, and an allocation site attributed to the wrong function breaks
the {FUN, CCID, T} patch key.

``lint_program`` cross-checks the statically extracted behaviour model
(:mod:`repro.analysis.summaries`) against ``Program.graph``:

* **ERROR** ``undeclared-call-site`` — an unconditional ``p.call`` whose
  (caller, callee, label) edge is not declared;
* **ERROR** ``undeclared-alloc-site`` — an unconditional allocation whose
  edge is not declared anywhere;
* **ERROR** ``alloc-site-wrong-function`` — the allocation's label *is*
  declared, but under a different caller (would corrupt patch keys);
* **WARNING** ``unreachable-declared-edge`` — a declared edge no
  extracted operation can cover;
* **WARNING** ``dead-function`` — a declared function unreachable from
  the entry;
* **INFO** — conditional operations that match no declared edge (branch
  dispatch over variants is a legitimate pattern), and operations the
  extractor could not resolve statically.

A workload with dynamic (computed) callee names is checked loosely:
edge coverage falls back to matching (callee, label) pairs anywhere in
the class, and unattributable operations are not errors.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from ..program.program import Program
from .summaries import (ALLOC_METHODS, DYNAMIC, ExtractedOp, ProgramModel,
                        extract_model)


class Severity(enum.Enum):
    """How bad a lint finding is.  Only ERROR fails the lint."""

    ERROR = "error"
    WARNING = "warning"
    INFO = "info"


@dataclass(frozen=True)
class LintFinding:
    """One problem (or observation) found by the linter."""

    severity: Severity
    rule: str
    message: str
    method: Optional[str] = None
    line: Optional[int] = None

    def render(self) -> str:
        """One-line ``severity rule: message (at method:line)`` form."""
        where = ""
        if self.method:
            where = f" (at {self.method}" + (
                f":{self.line})" if self.line else ")")
        return f"{self.severity.value:<7} {self.rule}: {self.message}{where}"


@dataclass
class LintReport:
    """Outcome of linting one program."""

    program_name: str
    findings: List[LintFinding] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)

    @property
    def errors(self) -> List[LintFinding]:
        """Findings with ERROR severity (these fail the lint)."""
        return [f for f in self.findings if f.severity is Severity.ERROR]

    @property
    def warnings(self) -> List[LintFinding]:
        """Findings with WARNING severity (reported, non-fatal)."""
        return [f for f in self.findings if f.severity is Severity.WARNING]

    @property
    def ok(self) -> bool:
        """True when the model and the declared graph agree (no errors)."""
        return not self.errors

    def render(self, verbose: bool = False) -> str:
        """Human-readable lint transcript for one program."""
        status = "OK" if self.ok else "FAIL"
        counts = (f"{len(self.errors)} error(s), "
                  f"{len(self.warnings)} warning(s)")
        lines = [f"lint {self.program_name}: {status} ({counts})"]
        for finding in self.findings:
            if finding.severity is Severity.INFO and not verbose:
                continue
            lines.append("  " + finding.render())
        for note in self.notes:
            lines.append(f"  note: {note}")
        return "\n".join(lines)


def _add(report: LintReport, severity: Severity, rule: str, message: str,
         op: Optional[ExtractedOp] = None) -> None:
    report.findings.append(LintFinding(
        severity=severity, rule=rule, message=message,
        method=op.method if op else None,
        line=op.line if op else None))


def _effective_guests(model: ProgramModel, method: str) -> Set[str]:
    """Guest identities for a method; unknown-but-reachable -> DYNAMIC."""
    guests = set(model.guest_names.get(method, set()))
    if not guests and model.has_dynamic_calls:
        # With computed callees in play, an apparently-unreached method
        # may still run; treat it as dynamically reachable.
        guests = {DYNAMIC}
    return guests


def _check_op_against_graph(report: LintReport, model: ProgramModel,
                            op: ExtractedOp) -> None:
    """Check one call/alloc operation against the declared edges."""
    graph = model.program.graph
    if op.callee is None or op.label is None:
        _add(report, Severity.INFO, "dynamic-op",
             f"{op.kind} with computed callee/label cannot be checked "
             f"statically", op)
        return
    guests = _effective_guests(model, op.method)
    if not guests:
        _add(report, Severity.INFO, "unreached-method",
             f"method {op.method} is never entered; its {op.kind} "
             f"operation was not checked", op)
        return
    declared = {(site.caller, site.callee, site.label)
                for site in graph.sites}
    is_alloc = op.kind in ALLOC_METHODS
    for guest in sorted(guests):
        if guest == DYNAMIC:
            # Loose mode: the edge must exist under *some* caller.
            if not any(callee == op.callee and label == op.label
                       for _, callee, label in declared):
                severity = (Severity.INFO if op.conditional
                            else Severity.WARNING)
                _add(report, severity,
                     "undeclared-alloc-site" if is_alloc
                     else "undeclared-call-site",
                     f"no declared edge -> {op.callee!r} "
                     f"(site {op.label!r}) under any caller "
                     f"[dynamic guest]", op)
            continue
        if (guest, op.callee, op.label) in declared:
            continue
        if op.conditional:
            _add(report, Severity.INFO, "conditional-op-unmatched",
                 f"conditional {op.kind} -> {op.callee!r} "
                 f"(site {op.label!r}) in {guest!r} matches no declared "
                 f"edge (branch-dispatch variant?)", op)
            continue
        if is_alloc:
            other_callers = sorted(
                caller for caller, callee, label in declared
                if callee == op.callee and label == op.label)
            if other_callers:
                _add(report, Severity.ERROR, "alloc-site-wrong-function",
                     f"allocation site {op.label!r} ({op.callee}) executes "
                     f"in {guest!r} but is declared in "
                     f"{', '.join(repr(c) for c in other_callers)}", op)
            else:
                _add(report, Severity.ERROR, "undeclared-alloc-site",
                     f"allocation {op.callee}(site={op.label!r}) in "
                     f"{guest!r} has no declared edge", op)
        else:
            _add(report, Severity.ERROR, "undeclared-call-site",
                 f"call {guest!r} -> {op.callee!r} (site {op.label!r}) "
                 f"has no declared edge", op)


def _check_declared_coverage(report: LintReport,
                             model: ProgramModel) -> None:
    """Warn about declared edges no extracted operation can produce."""
    graph = model.program.graph

    # (callee, label) -> guest callers whose methods contain a matching op,
    # plus a global pool for loose (dynamic) matching.
    covered: Dict[Tuple[str, str], Set[str]] = {}
    freeing_guests: Set[str] = set()
    for name, info in model.methods.items():
        guests = _effective_guests(model, name)
        for op in info.ops:
            if op.kind == "free":
                freeing_guests |= guests
                continue
            if op.kind == "call" or op.kind in ALLOC_METHODS:
                if op.callee is None or op.label is None:
                    # A computed name may cover anything.
                    freeing_guests |= set()  # no-op; kept for clarity
                    covered.setdefault((DYNAMIC, DYNAMIC),
                                       set()).update(guests)
                    continue
                covered.setdefault((op.callee, op.label),
                                   set()).update(guests)

    has_wildcard = (DYNAMIC, DYNAMIC) in covered
    for site in graph.sites:
        if site.callee == "free":
            # Process.free never resolves a call site; a declared free
            # edge is covered by any free in the right function.
            if (site.caller in freeing_guests
                    or DYNAMIC in freeing_guests):
                continue
            _add(report, Severity.WARNING, "unreachable-declared-edge",
                 f"declared free edge {site.caller!r} -> free "
                 f"(site {site.label!r}) has no matching p.free()")
            continue
        guests = covered.get((site.callee, site.label), set())
        if site.caller in guests or DYNAMIC in guests:
            continue
        if has_wildcard:
            # Computed callee names somewhere in the class could target
            # this edge; stay quiet rather than cry wolf.
            continue
        _add(report, Severity.WARNING, "unreachable-declared-edge",
             f"declared edge {site.caller!r} -> {site.callee!r} "
             f"(site {site.label!r}) matches no operation in the body")


def _check_dead_functions(report: LintReport, model: ProgramModel) -> None:
    graph = model.program.graph
    live = graph.reachable_from_entry()
    for name in sorted(set(graph.function_names) - set(live)):
        _add(report, Severity.WARNING, "dead-function",
             f"declared function {name!r} is unreachable from entry "
             f"{graph.entry!r}")


def _check_synthesizability(report: LintReport, program: Program) -> None:
    """Flag allocation sites the attack-synthesis solver must abstain on.

    ``repro synth`` solves request sizes over each site's static
    interval (:mod:`repro.analysis.symexec`); a top/unbounded size
    interval leaves the solver nothing to enumerate, so it abstains by
    policy.  Surfacing those sites *before* search runs keeps the
    static-analysis surface honest: a WARNING here predicts an
    abstention there, not a defect — hence non-fatal severity.
    """
    from .layout import analyze_layout

    layout = analyze_layout(program)
    for summary in layout.sites:
        if summary.size.bounded:
            continue
        report.findings.append(LintFinding(
            severity=Severity.WARNING,
            rule="unsynthesizable-alloc-site",
            message=(f"allocation site {summary.site.describe()} has "
                     f"unbounded size interval "
                     f"{summary.size.describe()}; the synthesis solver "
                     f"will abstain on it")))


def lint_program(program: Program,
                 synthesizability: bool = False) -> LintReport:
    """Cross-check ``program``'s declared graph against its behaviour.

    With ``synthesizability`` the report additionally flags allocation
    sites whose size intervals are unbounded (see
    :func:`_check_synthesizability`).
    """
    model = extract_model(program)
    report = LintReport(program_name=program.name)
    report.notes.extend(model.notes)
    if model.has_dynamic_calls:
        report.notes.append(
            "program uses computed callee names; edge checks are loose")

    for info in model.methods.values():
        for op in info.ops:
            if op.kind == "call" or op.kind in ALLOC_METHODS:
                _check_op_against_graph(report, model, op)

    _check_declared_coverage(report, model)
    _check_dead_functions(report, model)
    if synthesizability:
        _check_synthesizability(report, program)
    return report
