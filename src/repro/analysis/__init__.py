"""Static analysis over programs: reachability, linting, vuln candidates.

The paper's pipeline discovers vulnerabilities *dynamically* (shadow
replay of an attack input).  This package adds the complementary static
side: call-graph reachability facts that shrink the instrumentation
(:mod:`.reachability`), a linter that cross-checks each program's
declared call graph against its actual behaviour (:mod:`.lint`), and an
attack-input-free vulnerability detector emitting speculative
{FUN, CCID, T} patch candidates (:mod:`.staticvuln`,
:mod:`.staticpatch`) — over-approximation is safe because patches are
configuration, not code.
"""

from .lint import LintFinding, LintReport, Severity, lint_program
from .reachability import (HeapReachability, analyze_heap_reachability,
                           heap_core_subgraph, prune_instrumentation,
                           pruning_report)
from .staticpatch import (StaticPatchGenerator, StaticPatchResult)
from .staticvuln import (StaticAnalysisResult, StaticFinding,
                         analyze_program)
from .summaries import ProgramModel, extract_model

__all__ = [
    "HeapReachability",
    "LintFinding",
    "LintReport",
    "ProgramModel",
    "Severity",
    "StaticAnalysisResult",
    "StaticFinding",
    "StaticPatchGenerator",
    "StaticPatchResult",
    "analyze_heap_reachability",
    "analyze_program",
    "extract_model",
    "heap_core_subgraph",
    "lint_program",
    "prune_instrumentation",
    "pruning_report",
]
