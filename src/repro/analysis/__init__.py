"""Static analysis over programs: reachability, linting, vuln candidates.

The paper's pipeline discovers vulnerabilities *dynamically* (shadow
replay of an attack input).  This package adds the complementary static
side: call-graph reachability facts that shrink the instrumentation
(:mod:`.reachability`), a linter that cross-checks each program's
declared call graph against its actual behaviour (:mod:`.lint`), and an
attack-input-free vulnerability detector emitting speculative
{FUN, CCID, T} patch candidates (:mod:`.staticvuln`,
:mod:`.staticpatch`) — over-approximation is safe because patches are
configuration, not code — and a static soundness verifier for the
calling-context encodings themselves (:mod:`.encverify`): injectivity,
wrap-freedom and decoder-completeness certificates, with a
deterministic collision-repair planner.  The heap-layout pass
(:mod:`.layout`) composes the shared interval domain
(:mod:`.intervals`), a lifetime/co-liveness analysis and the libc
allocator's chunk geometry into a static adjacency graph — which
allocation-site pairs can become heap neighbours, and the minimal
overflow length to cross between them — plus machine-checkable layout
plans that seed attack synthesis.
"""

from .encverify import (CollisionWitness, EncodingCertificate,
                        EncodingSoundnessWarning, RepairAction,
                        RepairOutcome, TargetCertificate,
                        certificates_to_json, plan_repair,
                        reachable_value_facts, reachable_values,
                        repair_salt_collisions, verify_all, verify_codec,
                        verify_program)
from .intervals import (Interval, Num, join_num, may_exceed,
                        widen_num)
from .layout import (AdjacentPair, AllocSiteId, LayoutPlan,
                     LayoutResult, PlanStep, SiteSummary,
                     analyze_layout, forward_min_lengths)
from .lint import LintFinding, LintReport, Severity, lint_program
from .reachability import (HeapReachability, analyze_heap_reachability,
                           heap_core_subgraph, prune_instrumentation,
                           pruning_report)
from .staticpatch import (StaticPatchGenerator, StaticPatchResult)
from .staticvuln import (StaticAnalysisResult, StaticFinding,
                         analyze_program)
from .summaries import ProgramModel, extract_model
from .symexec import (Bounds, LinExpr, MonotoneConstraint, Problem,
                      Relation, RelationalConstraint, SolveResult)

__all__ = [
    "AdjacentPair",
    "AllocSiteId",
    "Bounds",
    "CollisionWitness",
    "EncodingCertificate",
    "EncodingSoundnessWarning",
    "HeapReachability",
    "Interval",
    "LayoutPlan",
    "LayoutResult",
    "LinExpr",
    "LintFinding",
    "LintReport",
    "MonotoneConstraint",
    "Num",
    "PlanStep",
    "Problem",
    "ProgramModel",
    "Relation",
    "RelationalConstraint",
    "RepairAction",
    "RepairOutcome",
    "Severity",
    "SiteSummary",
    "SolveResult",
    "StaticAnalysisResult",
    "StaticFinding",
    "StaticPatchGenerator",
    "StaticPatchResult",
    "TargetCertificate",
    "analyze_heap_reachability",
    "analyze_layout",
    "analyze_program",
    "forward_min_lengths",
    "join_num",
    "may_exceed",
    "widen_num",
    "certificates_to_json",
    "extract_model",
    "heap_core_subgraph",
    "lint_program",
    "plan_repair",
    "prune_instrumentation",
    "pruning_report",
    "reachable_value_facts",
    "reachable_values",
    "repair_salt_collisions",
    "verify_all",
    "verify_codec",
    "verify_program",
]
