"""Static soundness verifier for calling-context encodings.

HeapTherapy+ keys every patch by ``{FUN, CCID, T}``, so the defense is
exactly as sound as the encoding: a CCID collision between a vulnerable
and a benign calling context silently over- or under-patches.  The
codecs historically checked injectivity *dynamically* at build time
(random re-salting in :mod:`repro.ccencoding.pcce`) and decoded
Slim/Incremental values by bounded enumeration with guessed budgets.
This module replaces that with a static proof:

**Abstract domain.**  For every function ``f`` the verifier computes the
finite map ``V(f) : value -> (count, witness, witness2)`` — the exact set
of encoding values reachable at ``f``'s entry, where *value* is the fold
of the instrumented call sites along some entry-to-``f`` path, *count*
is how many paths produce it, and the witnesses are concrete paths (site
id sequences).  On acyclic graphs the domain is exact, not an
over-approximation: propagation in topological order visits every edge
once per distinct inflowing value, and because every codec's ``mix`` is
injective in the value argument (``V + c`` and ``3·V + c`` are both
invertible mod ``2**bits``), merges happen only across distinct edges —
each merge is a real collision of two real paths.

From the fixpoint the verifier certifies, per target:

1. **injectivity** — every value has ``count == 1``; otherwise the two
   witnesses form a concrete colliding-context counterexample, labelled
   *structural* when the paths share one instrumented-site subsequence
   (no constant assignment can separate them) or *salt-fixable* when
   they differ in at least one instrumented site;
2. **additive wrap-freedom** — a longest-path pass over the unwrapped
   constant sums proves the 64/128-bit accumulator never wraps, or flags
   the maximum path sum that can (flagged, not failed: the additive
   codecs are modular by construction);
3. **decoder completeness** — closed-form decoders (dense FCS/TCS
   numbering) must see exactly the value set ``[0, numContexts)``;
   enumeration decoders get their search budget *derived* (the exact
   context count) instead of guessed; hash codecs (PCC) are recorded as
   non-decoding.

**Repair.**  :func:`plan_repair` turns counterexamples into a
deterministic plan: salt-fixable collisions re-salt the lowest-id
instrumented site distinguishing the pair
(:meth:`~repro.ccencoding.pcce.AdditiveCodec.resalt_site`); structural
collisions add the lowest-id uninstrumented edge from the paths'
symmetric difference to the plan.  :func:`repair_salt_collisions` is the
narrow salt-only variant the :class:`AdditiveCodec` constructor runs in
place of its old blind re-salt loop.

Everything here is attack-input free and runs before deployment; the
result is a machine-readable :class:`EncodingCertificate` (see
``benchmarks/results/encoding_certificates.json``).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ..ccencoding.base import Codec, EncodingError
from ..ccencoding.instrumentation import InstrumentationPlan
from ..ccencoding.pcce import AdditiveCodec
from ..program.callgraph import CallGraph
from ..program.program import Program

#: Total abstract-state entries (values across all functions) before the
#: verifier abstains — a guard against graphs whose context count is
#: exponential, where *no* static or dynamic check is tractable.
DEFAULT_STATE_LIMIT = 2_000_000

#: Upper bound on repair rounds before giving up.
DEFAULT_REPAIR_ROUNDS = 64

#: Decoder classification recorded in certificates.
DECODE_CLOSED_FORM = "closed-form"
DECODE_ENUMERATION = "enumeration"
DECODE_NONE = "none"


class EncodingSoundnessWarning(UserWarning):
    """An unsound (colliding) encoding was detected but not refused."""


class VerificationBudgetError(EncodingError):
    """The abstract state outgrew the configured limit."""


# ---------------------------------------------------------------------------
# Abstract domain
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ValueFact:
    """One reachable encoding value at one function's entry."""

    #: Number of distinct entry paths producing this value.
    count: int
    #: One concrete producing path (site ids, entry -> function).
    witness: Tuple[int, ...]
    #: A second, distinct producing path when ``count > 1``.
    witness2: Optional[Tuple[int, ...]] = None


def reachable_value_facts(
        codec: Codec,
        state_limit: int = DEFAULT_STATE_LIMIT,
) -> Dict[str, Dict[int, ValueFact]]:
    """The value-set fixpoint: per function, every reachable value.

    Exact on acyclic graphs (raises :class:`~repro.program.callgraph.
    CallGraphError` via ``topological_order`` otherwise).  Only
    functions reachable from the entry appear in the result.
    """
    graph = codec.graph
    plan = codec.plan
    forward = graph.reachable_from_entry()
    order = [name for name in graph.topological_order() if name in forward]
    facts: Dict[str, Dict[int, ValueFact]] = {name: {} for name in order}
    facts[graph.entry] = {codec.seed(): ValueFact(1, ())}
    total = 1
    for name in order:
        here = facts[name]
        if not here:
            continue
        for site in graph.out_sites(name):
            dest = facts.get(site.callee)
            if dest is None:  # pragma: no cover - callee always reachable
                continue
            instrumented = site.site_id in plan.sites
            for value, fact in here.items():
                mixed = codec.mix(value, site) if instrumented else value
                witness = fact.witness + (site.site_id,)
                witness2 = (fact.witness2 + (site.site_id,)
                            if fact.witness2 is not None else None)
                existing = dest.get(mixed)
                if existing is None:
                    dest[mixed] = ValueFact(fact.count, witness, witness2)
                    total += 1
                    if total > state_limit:
                        raise VerificationBudgetError(
                            f"abstract state exceeds {state_limit} entries "
                            f"(context space too large to certify)")
                else:
                    second = existing.witness2 or witness2 or (
                        witness if witness != existing.witness else None)
                    dest[mixed] = ValueFact(existing.count + fact.count,
                                            existing.witness, second)
    return facts


def reachable_values(codec: Codec,
                     state_limit: int = DEFAULT_STATE_LIMIT
                     ) -> Dict[str, Tuple[int, ...]]:
    """Per-function sorted tuple of reachable encoding values."""
    return {name: tuple(sorted(values))
            for name, values in reachable_value_facts(
                codec, state_limit).items()}


def _max_path_sums(codec: AdditiveCodec) -> Dict[str, int]:
    """Per function, the maximum *unwrapped* constant sum over entry
    paths — the longest-path DP behind the wrap-freedom proof."""
    graph = codec.graph
    plan = codec.plan
    forward = graph.reachable_from_entry()
    order = [name for name in graph.topological_order() if name in forward]
    best: Dict[str, int] = {graph.entry: codec.seed()}
    for name in order:
        if name not in best:
            continue
        base = best[name]
        for site in graph.out_sites(name):
            constant = (codec.site_constant(site)
                        if site.site_id in plan.sites else 0)
            candidate = base + constant
            if candidate > best.get(site.callee, -1):
                best[site.callee] = candidate
    return best


# ---------------------------------------------------------------------------
# Certificates
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class CollisionWitness:
    """A concrete pair of calling contexts sharing one CCID."""

    target: str
    ccid: int
    #: Site-id sequences, entry -> target.
    context_a: Tuple[int, ...]
    context_b: Tuple[int, ...]
    #: Human-readable call chains for the two contexts.
    rendered_a: str
    rendered_b: str
    #: True when both contexts fold the same instrumented-site
    #: subsequence — no constant assignment can separate them; the plan
    #: itself lacks a distinguishing site.
    structural: bool

    def render(self) -> str:
        """One-paragraph counterexample: the CCID and both contexts."""
        kind = "structural" if self.structural else "salt-fixable"
        return (f"{self.target}: CCID 0x{self.ccid:x} collides "
                f"[{kind}]\n    {self.rendered_a}\n    {self.rendered_b}")


@dataclass(frozen=True)
class TargetCertificate:
    """Soundness facts for one target function under one codec."""

    target: str
    #: Exact number of calling contexts (entry paths), derived
    #: statically — no enumeration.
    context_count: int
    #: Number of distinct CCIDs those contexts produce.
    value_count: int
    injective: bool
    #: None when the scheme has no decoder (PCC).
    decoder_complete: Optional[bool]
    #: Exact enumeration budget for search-based decoding, else None.
    enumeration_budget: Optional[int]
    #: Closed-form decoders: value set == [0, numContexts)?
    dense_range_ok: Optional[bool]
    #: Additive codecs: no path's unwrapped constant sum wraps the
    #: accumulator.  None for hash codecs (wrap is intended there).
    wrap_free: Optional[bool]
    max_path_sum: Optional[int]
    collisions: Tuple[CollisionWitness, ...] = ()

    @property
    def certified(self) -> bool:
        """Injective and (where a decoder exists) complete."""
        return self.injective and self.decoder_complete is not False


@dataclass(frozen=True)
class EncodingCertificate:
    """The machine-readable outcome of one codec verification."""

    program: str
    scheme: str
    strategy: str
    pruned: bool
    decode_mode: str
    value_bits: Optional[int]
    instrumented_sites: int
    total_sites: int
    functions: int
    #: Total abstract-state entries the fixpoint computed.
    state_size: int
    #: True when the verifier could not run (recursive graph or state
    #: budget) — distinct from a definite failure.
    abstained: bool = False
    notes: Tuple[str, ...] = ()
    targets: Tuple[TargetCertificate, ...] = ()

    @property
    def certified(self) -> bool:
        """True when every target is injective and decodable-complete."""
        return (not self.abstained
                and all(t.certified for t in self.targets))

    @property
    def collisions(self) -> List[CollisionWitness]:
        """All collision counterexamples across targets."""
        return [witness for target in self.targets
                for witness in target.collisions]

    def to_json_dict(self) -> Dict[str, object]:
        """JSON-serializable certificate (the artifact row format)."""
        return {
            "program": self.program,
            "scheme": self.scheme,
            "strategy": self.strategy,
            "pruned": self.pruned,
            "certified": self.certified,
            "abstained": self.abstained,
            "decode_mode": self.decode_mode,
            "value_bits": self.value_bits,
            "instrumented_sites": self.instrumented_sites,
            "total_sites": self.total_sites,
            "functions": self.functions,
            "state_size": self.state_size,
            "notes": list(self.notes),
            "targets": [
                {
                    "target": t.target,
                    "context_count": t.context_count,
                    "value_count": t.value_count,
                    "injective": t.injective,
                    "decoder_complete": t.decoder_complete,
                    "enumeration_budget": t.enumeration_budget,
                    "dense_range_ok": t.dense_range_ok,
                    "wrap_free": t.wrap_free,
                    "max_path_sum": (str(t.max_path_sum)
                                     if t.max_path_sum is not None
                                     else None),
                    "collisions": [
                        {
                            "ccid": f"0x{w.ccid:x}",
                            "structural": w.structural,
                            "context_a": list(w.context_a),
                            "context_b": list(w.context_b),
                            "rendered_a": w.rendered_a,
                            "rendered_b": w.rendered_b,
                        }
                        for w in t.collisions
                    ],
                }
                for t in self.targets
            ],
        }

    def render(self) -> str:
        """Human-readable verification transcript."""
        status = ("ABSTAINED" if self.abstained
                  else "CERTIFIED" if self.certified else "UNSOUND")
        lines = [
            f"encoding soundness {self.program} "
            f"[{self.scheme}/{self.strategy}"
            + ("+prune" if self.pruned else "") + f"]: {status}",
            f"  decode: {self.decode_mode}; "
            f"{self.instrumented_sites}/{self.total_sites} sites "
            f"instrumented; abstract state {self.state_size} entr(ies)",
        ]
        for target in self.targets:
            marks = [f"{target.context_count} context(s)",
                     f"{target.value_count} ccid(s)",
                     "injective" if target.injective else "COLLIDING"]
            if target.decoder_complete is not None:
                marks.append("decoder complete"
                             if target.decoder_complete
                             else "decoder INCOMPLETE")
            if target.enumeration_budget is not None:
                marks.append(f"budget {target.enumeration_budget}")
            if target.wrap_free is not None:
                marks.append("wrap-free" if target.wrap_free
                             else "may wrap (modular)")
            lines.append(f"  {target.target}: " + ", ".join(marks))
            for witness in target.collisions:
                lines.append("    " +
                             witness.render().replace("\n", "\n    "))
        for note in self.notes:
            lines.append(f"  note: {note}")
        return "\n".join(lines)


def _render_context(graph: CallGraph, path: Sequence[int]) -> str:
    if not path:
        return graph.entry
    parts = [graph.entry]
    for site_id in path:
        site = graph.site_by_id(site_id)
        suffix = f"#{site.label}" if site.label else ""
        parts.append(f"{site.callee}{suffix}")
    return " -> ".join(parts)


def _instrumented_subsequence(plan: InstrumentationPlan,
                              path: Sequence[int]) -> Tuple[int, ...]:
    return tuple(sid for sid in path if sid in plan.sites)


def _decode_mode(codec: Codec) -> str:
    if not codec.supports_decoding:
        return DECODE_NONE
    if getattr(codec, "dense", False):
        return DECODE_CLOSED_FORM
    return DECODE_ENUMERATION


def _certify_target(codec: Codec, target: str,
                    facts: Mapping[int, ValueFact],
                    max_sum: Optional[int]) -> TargetCertificate:
    graph = codec.graph
    plan = codec.plan
    context_count = sum(fact.count for fact in facts.values())
    witnesses: List[CollisionWitness] = []
    for value in sorted(facts):
        fact = facts[value]
        if fact.count <= 1 or fact.witness2 is None:
            continue
        structural = (
            _instrumented_subsequence(plan, fact.witness)
            == _instrumented_subsequence(plan, fact.witness2))
        witnesses.append(CollisionWitness(
            target=target, ccid=value,
            context_a=fact.witness, context_b=fact.witness2,
            rendered_a=_render_context(graph, fact.witness),
            rendered_b=_render_context(graph, fact.witness2),
            structural=structural))
    injective = not witnesses

    mode = _decode_mode(codec)
    enumeration_budget: Optional[int] = None
    dense_range_ok: Optional[bool] = None
    decoder_complete: Optional[bool] = None
    if mode == DECODE_CLOSED_FORM:
        declared = getattr(codec, "num_contexts", {}).get(target, 0)
        dense_range_ok = set(facts) == set(range(declared))
        decoder_complete = injective and dense_range_ok
    elif mode == DECODE_ENUMERATION:
        enumeration_budget = context_count
        decoder_complete = injective

    wrap_free: Optional[bool] = None
    if max_sum is not None:
        bits = getattr(codec, "value_bits", 64)
        wrap_free = max_sum < (1 << bits)

    return TargetCertificate(
        target=target, context_count=context_count,
        value_count=len(facts), injective=injective,
        decoder_complete=decoder_complete,
        enumeration_budget=enumeration_budget,
        dense_range_ok=dense_range_ok,
        wrap_free=wrap_free, max_path_sum=max_sum,
        collisions=tuple(witnesses))


def verify_codec(codec: Codec, program_name: str = "",
                 state_limit: int = DEFAULT_STATE_LIMIT
                 ) -> EncodingCertificate:
    """Statically verify one built codec; never raises on unsoundness.

    Recursive graphs and state-budget blowups yield an *abstained*
    certificate (``certified`` False, with a note) rather than an
    exception, so callers can choose their own failure policy.
    """
    plan = codec.plan
    graph = plan.graph
    base = dict(
        program=program_name or getattr(graph, "entry", "?"),
        scheme=codec.scheme_name,
        strategy=plan.strategy.value,
        pruned=plan.pruned,
        decode_mode=_decode_mode(codec),
        value_bits=getattr(codec, "value_bits", None),
        instrumented_sites=len(plan.sites),
        total_sites=graph.site_count,
        functions=len(graph.function_names),
    )
    if not graph.is_acyclic():
        return EncodingCertificate(
            state_size=0, abstained=True,
            notes=("recursive call graph: the reachable value set is "
                   "unbounded; injectivity is probabilistic (PCC) and "
                   "cannot be certified statically",),
            **base)  # type: ignore[arg-type]
    try:
        facts = reachable_value_facts(codec, state_limit)
    except VerificationBudgetError as exc:
        return EncodingCertificate(
            state_size=0, abstained=True, notes=(str(exc),),
            **base)  # type: ignore[arg-type]
    state_size = sum(len(values) for values in facts.values())

    sums: Dict[str, int] = {}
    if isinstance(codec, AdditiveCodec):
        sums = _max_path_sums(codec)

    targets: List[TargetCertificate] = []
    notes: List[str] = []
    for target in plan.targets:
        if not graph.has_function(target):
            notes.append(f"target {target!r} absent from the call graph")
            continue
        targets.append(_certify_target(
            codec, target, facts.get(target, {}), sums.get(target)))
    return EncodingCertificate(
        state_size=state_size, targets=tuple(targets),
        notes=tuple(notes), **base)  # type: ignore[arg-type]


def verify_program(program: Program, scheme: str = "pcc",
                   strategy: object = None, prune: bool = False,
                   state_limit: int = DEFAULT_STATE_LIMIT
                   ) -> EncodingCertificate:
    """Instrument ``program`` for (scheme, strategy) and verify it."""
    from ..ccencoding.targeting import Strategy
    from ..core.instrument import instrument
    if strategy is None:
        strategy = Strategy.INCREMENTAL
    if isinstance(strategy, str):
        strategy = Strategy.from_name(strategy)
    instrumented = instrument(
        program, strategy=strategy,  # type: ignore[arg-type]
        scheme=scheme, prune=prune)
    return verify_codec(instrumented.codec, program_name=program.name,
                        state_limit=state_limit)


def verify_all(program: Program, schemes: Optional[Sequence[str]] = None,
               strategies: Optional[Sequence[object]] = None,
               prune: bool = False,
               state_limit: int = DEFAULT_STATE_LIMIT
               ) -> List[EncodingCertificate]:
    """One certificate per scheme x strategy combination."""
    from ..ccencoding import SCHEMES
    from ..ccencoding.targeting import Strategy
    certificates: List[EncodingCertificate] = []
    for scheme in (schemes if schemes is not None else sorted(SCHEMES)):
        for strategy in (strategies if strategies is not None
                         else list(Strategy)):
            certificates.append(verify_program(
                program, scheme=scheme, strategy=strategy, prune=prune,
                state_limit=state_limit))
    return certificates


def certificates_to_json(
        certificates: Sequence[EncodingCertificate]) -> Dict[str, object]:
    """The committed artifact format (deterministic, no timestamps)."""
    combos = [certificate.to_json_dict() for certificate in certificates]
    return {
        "version": 1,
        "generator": "repro verify-encoding",
        "summary": {
            "combos": len(combos),
            "certified": sum(1 for c in combos if c["certified"]),
            "abstained": sum(1 for c in combos if c["abstained"]),
            "collisions": sum(
                len(t["collisions"])  # type: ignore[arg-type]
                for c in combos
                for t in c["targets"]),  # type: ignore[union-attr]
        },
        "certificates": combos,
    }


# ---------------------------------------------------------------------------
# Deterministic collision repair
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class RepairAction:
    """One deterministic repair step."""

    #: ``"resalt"`` (new constant for one site) or ``"instrument"``
    #: (one extra site added to the plan).
    kind: str
    site_id: int
    detail: str

    def render(self) -> str:
        """One-line ``kind site N: detail`` form."""
        return f"{self.kind} site {self.site_id}: {self.detail}"


@dataclass
class RepairOutcome:
    """Result of running the repair planner to a fixpoint."""

    codec: Codec
    plan: InstrumentationPlan
    actions: List[RepairAction]
    certificate: EncodingCertificate

    @property
    def resolved(self) -> bool:
        """True when the final certificate is collision-free."""
        return self.certificate.certified


def _plan_with_extra_site(plan: InstrumentationPlan,
                          site_id: int) -> InstrumentationPlan:
    sites = frozenset(plan.sites | {site_id})
    functions = frozenset(plan.graph.site_by_id(sid).caller
                          for sid in sites)
    return replace(plan, sites=sites, instrumented_functions=functions)


def _first_collision(
        certificate: EncodingCertificate) -> Optional[CollisionWitness]:
    collisions = sorted(certificate.collisions,
                        key=lambda w: (w.target, w.ccid))
    return collisions[0] if collisions else None


def plan_repair(codec: Codec, program_name: str = "",
                max_rounds: int = DEFAULT_REPAIR_ROUNDS,
                state_limit: int = DEFAULT_STATE_LIMIT) -> RepairOutcome:
    """Drive the codec to a certified state, deterministically.

    Each round fixes the lexicographically first collision: salt-fixable
    pairs re-salt the lowest-id instrumented site in the pair's
    symmetric difference; structural pairs instrument the lowest-id
    extra edge that separates them (rebuilding the codec on the widened
    plan).  Raises :class:`EncodingError` when no repair exists or the
    round budget is exhausted — both indicate the plan, not the salts,
    is at fault.
    """
    current = codec
    actions: List[RepairAction] = []
    for _ in range(max_rounds):
        certificate = verify_codec(current, program_name=program_name,
                                   state_limit=state_limit)
        if certificate.abstained:
            raise EncodingError(
                "cannot repair an unverifiable encoding: "
                + "; ".join(certificate.notes))
        witness = _first_collision(certificate)
        if witness is None:
            return RepairOutcome(current, current.plan, actions,
                                 certificate)
        plan = current.plan
        if witness.structural:
            candidates = sorted(
                set(witness.context_a) ^ set(witness.context_b))
            extra = [sid for sid in candidates if sid not in plan.sites]
            if not extra:
                raise EncodingError(
                    f"collision at {witness.target} CCID "
                    f"0x{witness.ccid:x} is not repairable: the "
                    f"colliding contexts differ in no edge that could "
                    f"be instrumented")
            site_id = extra[0]
            site = plan.graph.site_by_id(site_id)
            actions.append(RepairAction(
                "instrument", site_id,
                f"add {site.caller}->{site.callee} to separate "
                f"{witness.target} CCID 0x{witness.ccid:x}"))
            new_plan = _plan_with_extra_site(plan, site_id)
            current = type(current)(new_plan)  # type: ignore[call-arg]
        else:
            diff = sorted(
                set(_instrumented_subsequence(plan, witness.context_a))
                ^ set(_instrumented_subsequence(plan, witness.context_b)))
            if not diff or not isinstance(current, AdditiveCodec):
                raise EncodingError(
                    f"collision at {witness.target} CCID "
                    f"0x{witness.ccid:x} cannot be re-salted "
                    f"({current.scheme_name} constants are fixed)")
            site_id = diff[0]
            constant = current.resalt_site(site_id)
            actions.append(RepairAction(
                "resalt", site_id,
                f"new constant 0x{constant:x} separates "
                f"{witness.target} CCID 0x{witness.ccid:x}"))
    raise EncodingError(
        f"collision repair did not converge in {max_rounds} round(s)")


def repair_salt_collisions(codec: AdditiveCodec,
                           max_rounds: int = DEFAULT_REPAIR_ROUNDS,
                           state_limit: int = DEFAULT_STATE_LIMIT) -> int:
    """Salt-only repair used by :class:`AdditiveCodec` at build time.

    Re-salts individual sites until every target is injective; returns
    the number of re-salts.  Structural collisions (the plan lacks a
    distinguishing site) and recursive graphs raise
    :class:`EncodingError` — constants cannot fix either.
    """
    graph = codec.graph
    if not graph.is_acyclic():
        raise EncodingError(
            "PCCE/DeltaPath require an acyclic call graph "
            "(use PCC for recursive programs)")
    resalts = 0
    for _ in range(max_rounds):
        certificate = verify_codec(codec, state_limit=state_limit)
        if certificate.abstained:
            raise EncodingError(
                "could not certify additive constants: "
                + "; ".join(certificate.notes))
        witness = _first_collision(certificate)
        if witness is None:
            return resalts
        if witness.structural:
            raise EncodingError(
                f"could not find collision-free additive constants: "
                f"contexts {witness.rendered_a!r} and "
                f"{witness.rendered_b!r} of {witness.target} share one "
                f"instrumented subsequence (the plan cannot "
                f"distinguish them; run the repair planner to add "
                f"instrumentation)")
        diff = sorted(
            set(_instrumented_subsequence(codec.plan, witness.context_a))
            ^ set(_instrumented_subsequence(codec.plan,
                                            witness.context_b)))
        codec.resalt_site(diff[0])
        resalts += 1
    raise EncodingError(
        f"could not find collision-free additive constants in "
        f"{max_rounds} re-salt(s)")
