"""Static extraction of heap behaviour from ``Program`` bodies.

A :class:`~repro.program.program.Program` plays the role of compiled C
code: its Python methods stand in for functions, and every dynamic call
or heap operation goes through the :class:`~repro.program.process.Process`
API naming a declared call site.  This module is the "front end" of the
static analyses: it walks the AST of the program's method bodies —
without executing anything — and recovers

* every process operation (``p.call``, ``p.malloc``, ``p.free``, memory
  reads/writes, syscalls) with its textual position and guardedness,
* the mapping from Python methods to the *guest functions* they execute
  as (a method entered through ``p.call("f", ...)`` runs as ``f``; a
  plain ``self._helper(...)`` call stays in the caller's guest function),
* which of those facts are only partially known because a callee name is
  computed at runtime (an f-string callee, for example), so downstream
  consumers can degrade gracefully instead of reporting false positives.

Both the program-model linter (:mod:`repro.analysis.lint`) and the static
vulnerability detector (:mod:`repro.analysis.staticvuln`) are built on
this extraction.
"""

from __future__ import annotations

import ast
import inspect
import textwrap
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Set, Tuple

from ..program.program import Program

#: Process methods that allocate and carry a ``site=`` label.
ALLOC_METHODS = ("malloc", "calloc", "memalign", "aligned_alloc",
                 "posix_memalign", "realloc")

#: Process methods that read memory or consume a value.
READ_METHODS = ("read", "read_int", "syscall_out", "branch_on",
                "use_as_address")

#: Process methods that write or initialize memory.
WRITE_METHODS = ("write", "write_int", "fill", "syscall_in", "copy")

#: Every process method the extractor records.
TRACKED_METHODS = (("call", "free", "compute")
                   + ALLOC_METHODS + READ_METHODS + WRITE_METHODS)

#: Marker guest name for methods reachable with a computed callee name.
DYNAMIC = "<dynamic>"


@dataclass
class ExtractedOp:
    """One process-API operation found in a method body."""

    #: Process method name (``"call"``, ``"malloc"``, ``"free"``, ...).
    kind: str
    #: Python method the operation appears in.
    method: str
    #: Source line within the defining module.
    line: int
    #: True when the operation is branch- or loop-guarded (may not run).
    conditional: bool
    #: True when the operation sits inside a loop body.
    in_loop: bool
    #: Static callee: guest function for ``call``, the allocation API for
    #: allocs, ``"free"`` for frees.  ``None`` when computed at runtime.
    callee: Optional[str] = None
    #: Static ``site=`` label ("" = default); ``None`` when dynamic.
    label: Optional[str] = ""
    #: For ``call``: the ``self``-method passed as the function body, when
    #: statically identifiable.
    target_method: Optional[str] = None
    #: The raw AST call node, for deeper (dataflow) analysis.
    node: Any = None


@dataclass
class MethodInfo:
    """Extraction result for one Python method."""

    name: str
    func_ast: Any
    #: Name of the ``Process`` parameter ("p" by convention).
    process_param: Optional[str]
    ops: List[ExtractedOp] = field(default_factory=list)
    #: Plain ``self._helper(...)`` calls: (method name, conditional).
    self_calls: List[Tuple[str, bool]] = field(default_factory=list)


@dataclass
class ProgramModel:
    """The statically-extracted model of one program's behaviour."""

    program: Program
    methods: Dict[str, MethodInfo]
    #: Python method -> guest function names it may execute as.  The
    #: special :data:`DYNAMIC` member marks unknown (computed) identities.
    guest_names: Dict[str, Set[str]]
    #: True when any ``p.call`` had a computed callee name.
    has_dynamic_calls: bool
    #: Problems encountered during extraction (missing source, ...).
    notes: List[str] = field(default_factory=list)

    def methods_for_guest(self, guest: str) -> List[MethodInfo]:
        """Methods that may execute as guest function ``guest``."""
        return [info for name, info in self.methods.items()
                if guest in self.guest_names.get(name, set())]

    def is_dynamic(self, method: str) -> bool:
        """True when ``method`` may run under an unknown guest identity."""
        return DYNAMIC in self.guest_names.get(method, set())


def _literal_str(node: Any) -> Optional[str]:
    """The string a node statically evaluates to, or None."""
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    return None


def _process_param(func_ast: ast.FunctionDef) -> Optional[str]:
    """Guess the ``Process`` parameter of a method (by name, then slot)."""
    args = [a.arg for a in func_ast.args.args if a.arg != "self"]
    for name in args:
        if name in ("p", "process", "proc"):
            return name
    return args[0] if args else None


class _BodyWalker:
    """Walks one method body recording process ops and self-calls."""

    def __init__(self, info: MethodInfo) -> None:
        self.info = info

    def walk(self) -> None:
        self._walk_body(self.info.func_ast.body, conditional=False,
                        in_loop=False)

    # ------------------------------------------------------------------

    def _walk_body(self, body: List[Any], conditional: bool,
                   in_loop: bool) -> None:
        seen_early_exit = False
        for stmt in body:
            stmt_conditional = conditional or seen_early_exit
            self._walk_stmt(stmt, stmt_conditional, in_loop)
            if isinstance(stmt, ast.If) and self._exits(stmt):
                # `if x: return ...` — everything after it is the other
                # path, hence conditional.
                seen_early_exit = True

    @staticmethod
    def _exits(stmt: ast.If) -> bool:
        for branch in (stmt.body, stmt.orelse):
            for inner in branch:
                if isinstance(inner, (ast.Return, ast.Raise,
                                      ast.Continue, ast.Break)):
                    return True
        return False

    def _walk_stmt(self, stmt: Any, conditional: bool,
                   in_loop: bool) -> None:
        if isinstance(stmt, ast.If):
            self._scan_expr(stmt.test, conditional, in_loop)
            self._walk_body(stmt.body, True, in_loop)
            self._walk_body(stmt.orelse, True, in_loop)
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            self._scan_expr(stmt.iter, conditional, in_loop)
            self._walk_body(stmt.body, True, True)
            self._walk_body(stmt.orelse, True, in_loop)
        elif isinstance(stmt, ast.While):
            self._scan_expr(stmt.test, conditional, in_loop)
            self._walk_body(stmt.body, True, True)
            self._walk_body(stmt.orelse, True, in_loop)
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                self._scan_expr(item.context_expr, conditional, in_loop)
            self._walk_body(stmt.body, conditional, in_loop)
        elif isinstance(stmt, ast.Try):
            self._walk_body(stmt.body, conditional, in_loop)
            for handler in stmt.handlers:
                self._walk_body(handler.body, True, in_loop)
            self._walk_body(stmt.orelse, True, in_loop)
            self._walk_body(stmt.finalbody, conditional, in_loop)
        elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                               ast.ClassDef)):
            return  # nested defs are out of scope for the lite analysis
        else:
            for child in ast.iter_child_nodes(stmt):
                self._scan_expr(child, conditional, in_loop)

    def _scan_expr(self, node: Any, conditional: bool,
                   in_loop: bool) -> None:
        """Record every tracked call in an expression tree, in order."""
        for call in [n for n in ast.walk(node) if isinstance(n, ast.Call)]:
            self._record_call(call, conditional, in_loop)

    # ------------------------------------------------------------------

    def _record_call(self, call: ast.Call, conditional: bool,
                     in_loop: bool) -> None:
        func = call.func
        if not isinstance(func, ast.Attribute):
            return
        base = func.value
        pname = self.info.process_param
        if isinstance(base, ast.Name) and base.id == pname:
            attr = func.attr
            if attr not in TRACKED_METHODS:
                return
            op = ExtractedOp(kind=attr, method=self.info.name,
                             line=getattr(call, "lineno", 0),
                             conditional=conditional, in_loop=in_loop,
                             node=call)
            if attr == "call":
                op.callee = (_literal_str(call.args[0])
                             if call.args else None)
                op.label = self._site_kw(call)
                op.target_method = self._self_method_ref(
                    call.args[1] if len(call.args) > 1 else None)
            elif attr in ALLOC_METHODS:
                op.callee = attr
                op.label = self._site_kw(call)
            elif attr == "free":
                op.callee = "free"
            self.info.ops.append(op)
        elif isinstance(base, ast.Name) and base.id == "self":
            # A plain helper call: stays in the caller's guest function.
            self.info.self_calls.append((func.attr, conditional))

    @staticmethod
    def _site_kw(call: ast.Call) -> Optional[str]:
        for keyword in call.keywords:
            if keyword.arg == "site":
                return _literal_str(keyword.value)
        return ""

    @staticmethod
    def _self_method_ref(node: Any) -> Optional[str]:
        if (isinstance(node, ast.Attribute)
                and isinstance(node.value, ast.Name)
                and node.value.id == "self"):
            return node.attr
        return None


def _class_sources(program: Program) -> List[ast.ClassDef]:
    """AST class definitions along the program's MRO (most-derived first),
    stopping at the abstract bases (which contain no process code)."""
    stop = {"Program", "VulnerableProgram", "ABC", "object"}
    defs: List[ast.ClassDef] = []
    for cls in type(program).__mro__:
        if cls.__name__ in stop:
            continue
        try:
            source = textwrap.dedent(inspect.getsource(cls))
        except (OSError, TypeError):
            continue
        tree = ast.parse(source)
        for node in tree.body:
            if isinstance(node, ast.ClassDef):
                defs.append(node)
    return defs


def extract_model(program: Program) -> ProgramModel:
    """Build the static behaviour model of ``program``.

    Walks every method of the program's class (and concrete ancestors),
    records process operations, and resolves the method -> guest-function
    mapping to a fixed point, propagating identity through plain
    ``self``-helper calls and marking computed callees as dynamic.
    """
    methods: Dict[str, MethodInfo] = {}
    notes: List[str] = []
    class_defs = _class_sources(program)
    if not class_defs:
        notes.append("no inspectable source for program class; "
                     "static extraction is empty")
    for class_def in class_defs:
        for node in class_def.body:
            if not isinstance(node, ast.FunctionDef):
                continue
            if node.name in methods:       # most-derived wins
                continue
            info = MethodInfo(node.name, node, _process_param(node))
            _BodyWalker(info).walk()
            methods[node.name] = info

    guest_names: Dict[str, Set[str]] = {name: set() for name in methods}
    if "main" in guest_names:
        guest_names["main"].add(program.graph.entry)
    has_dynamic_calls = False

    # Seed from p.call edges, then propagate through self-helper calls
    # until stable.
    for info in methods.values():
        for op in info.ops:
            if op.kind != "call":
                continue
            target = op.target_method
            if target is None or target not in guest_names:
                if op.callee is None:
                    has_dynamic_calls = True
                continue
            if op.callee is not None:
                guest_names[target].add(op.callee)
            else:
                guest_names[target].add(DYNAMIC)
                has_dynamic_calls = True

    changed = True
    while changed:
        changed = False
        for info in methods.values():
            source = guest_names[info.name]
            for helper, _conditional in info.self_calls:
                if helper not in guest_names:
                    continue
                before = len(guest_names[helper])
                guest_names[helper] |= source
                if len(guest_names[helper]) != before:
                    changed = True

    return ProgramModel(program=program, methods=methods,
                        guest_names=guest_names,
                        has_dynamic_calls=has_dynamic_calls, notes=notes)
