"""The shared interval domain of the static analyses.

Factored out of :mod:`repro.analysis.staticvuln` so that the heap-layout
pass (:mod:`repro.analysis.layout`) and any future constraint layer
reason over the *same* abstraction the vulnerability detector uses:

* :class:`Num` — a linear expression over named symbols plus a constant
  interval ``[lo, hi]`` and a taint bit.  Pure intervals are ``Num``
  values with no terms; symbolic values keep their terms so equal
  expressions can be proven equal while differing ones stay
  incomparable.
* :func:`join_num` — the least upper bound at control-flow joins.
* :func:`may_exceed` — the overflow predicate: why an access extent may
  exceed an allocation size, or ``None`` when provably safe.
* :class:`Interval` — a plain integer interval with an explicit top
  (``hi is None`` means unbounded) and a *widening* operator, for
  clients that iterate to a fixed point (the layout pass widens
  repeatedly-joined allocation-site extents so chains terminate).

Fresh-unknown symbols (``?uN``) are drawn from a module counter; call
:func:`reset_fresh_symbols` at the start of an analysis so repeated runs
over the same program produce byte-identical symbol names (the
determinism contract behind ``repro layout --json``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional, Tuple

__all__ = [
    "Interval",
    "Num",
    "WIDEN_AFTER",
    "fresh_unknown",
    "join_num",
    "may_exceed",
    "reset_fresh_symbols",
    "widen_num",
]


# ---------------------------------------------------------------------------
# Symbolic linear expressions with a constant interval
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Num:
    """A linear expression: ``sum(coeff * symbol) + [lo, hi]``.

    ``terms`` empty means a concrete interval.  ``tainted`` marks values
    derived from external input or memory reads.
    """

    terms: Tuple[Tuple[str, int], ...] = ()
    lo: int = 0
    hi: int = 0
    tainted: bool = False

    @staticmethod
    def const(value: int) -> "Num":
        return Num((), value, value)

    @staticmethod
    def symbol(name: str, tainted: bool = True) -> "Num":
        return Num(((name, 1),), 0, 0, tainted)

    @property
    def concrete(self) -> bool:
        """True when the value has no symbolic terms (pure interval)."""
        return not self.terms

    @property
    def exact(self) -> Optional[int]:
        """The single concrete value, or None when not a point."""
        if self.concrete and self.lo == self.hi:
            return self.lo
        return None

    def _combine(self, other: "Num", sign: int) -> "Num":
        coeffs: Dict[str, int] = dict(self.terms)
        for name, coeff in other.terms:
            coeffs[name] = coeffs.get(name, 0) + sign * coeff
        terms = tuple(sorted((n, c) for n, c in coeffs.items() if c))
        if sign > 0:
            lo, hi = self.lo + other.lo, self.hi + other.hi
        else:
            lo, hi = self.lo - other.hi, self.hi - other.lo
        return Num(terms, lo, hi, self.tainted or other.tainted)

    def add(self, other: "Num") -> "Num":
        """Symbolic addition (term-wise, interval-precise)."""
        return self._combine(other, 1)

    def sub(self, other: "Num") -> "Num":
        """Symbolic subtraction (term-wise, interval-precise)."""
        return self._combine(other, -1)

    def mul(self, other: "Num") -> "Num":
        """Multiplication; linear only by a concrete factor, else fresh
        unknown (the analysis stays in linear arithmetic)."""
        if self.concrete and self.exact is not None:
            other, self = self, other
        if other.concrete and other.exact is not None:
            k = other.exact
            terms = tuple((n, c * k) for n, c in self.terms)
            bounds = sorted((self.lo * k, self.hi * k))
            return Num(terms, bounds[0], bounds[1],
                       self.tainted or other.tainted)
        return fresh_unknown(tainted=self.tainted or other.tainted)

    def describe(self) -> str:
        """Human-readable form, e.g. ``2*n + [0,8]``."""
        parts = [f"{c}*{n}" if c != 1 else n for n, c in self.terms]
        if not parts or self.lo or self.hi:
            parts.append(str(self.lo) if self.lo == self.hi
                         else f"[{self.lo},{self.hi}]")
        return " + ".join(parts) if parts else "0"


_unknown_counter = [0]


def fresh_unknown(tainted: bool = False) -> Num:
    """A fresh opaque symbol (``?uN``); numbering is per analysis run."""
    _unknown_counter[0] += 1
    return Num.symbol(f"?u{_unknown_counter[0]}", tainted)


def reset_fresh_symbols() -> None:
    """Restart the ``?uN`` numbering.

    Analyses call this on entry so two runs over the same program emit
    identical symbol names (and therefore byte-identical reports); the
    counter exists only to keep symbols distinct *within* one run.
    """
    _unknown_counter[0] = 0


def join_num(a: Num, b: Num) -> Num:
    """Least upper bound of two values at a control-flow join."""
    if a == b:
        return a
    if a.concrete and b.concrete:
        return Num((), min(a.lo, b.lo), max(a.hi, b.hi),
                   a.tainted or b.tainted)
    return fresh_unknown(tainted=a.tainted or b.tainted)


def widen_num(previous: Num, joined: Num) -> Num:
    """Widening: jump moving interval bounds straight to the extreme.

    Used instead of :func:`join_num` once a value has been joined "too
    often" (a loop or repeated path join): a still-shrinking lower bound
    drops to 0 (all quantities in this domain are byte counts) and a
    still-growing upper bound becomes symbolic — a fresh unknown, the
    domain's top — so any ascending chain stabilizes after one widening
    step.  Values already equal are returned unchanged.
    """
    if previous == joined:
        return previous
    if previous.concrete and joined.concrete:
        if joined.hi > previous.hi:
            return fresh_unknown(tainted=previous.tainted or joined.tainted)
        lo = 0 if joined.lo < previous.lo else joined.lo
        return Num((), lo, max(previous.hi, joined.hi),
                   previous.tainted or joined.tainted)
    return fresh_unknown(tainted=previous.tainted or joined.tainted)


def may_exceed(extent: Num, size: Num) -> Optional[str]:
    """Why ``extent`` may exceed ``size`` — None when provably safe.

    Heuristic asymmetry: a concrete extent against a symbolic size is
    assumed safe (the declared size was presumably chosen to hold the
    constant-sized data), but any symbolic/tainted extent that is not
    *syntactically equal* to the size is a candidate.
    """
    diff = extent.sub(size)
    if diff.concrete:
        if diff.hi > 0:
            return (f"extent {extent.describe()} exceeds size "
                    f"{size.describe()} by up to {diff.hi}")
        return None
    if extent.concrete:
        return None
    if extent.tainted:
        return (f"attacker-influenced extent {extent.describe()} vs "
                f"size {size.describe()}")
    return (f"extent {extent.describe()} not provably within size "
            f"{size.describe()}")


# ---------------------------------------------------------------------------
# Plain integer intervals with explicit top
# ---------------------------------------------------------------------------


#: Number of joins after which :meth:`Interval.join` clients should
#: switch to :meth:`Interval.widen` (the layout pass does).
WIDEN_AFTER: int = 4


@dataclass(frozen=True)
class Interval:
    """A non-negative integer interval; ``hi is None`` means unbounded.

    The concretization of an allocation-site *request size*: every run
    of the site requests between ``lo`` and ``hi`` bytes.  Symbolic
    :class:`Num` sizes concretize to an unbounded interval (their
    constant part only offsets unknown symbols, so it bounds nothing).
    """

    lo: int = 0
    hi: Optional[int] = None

    def __post_init__(self) -> None:
        if self.lo < 0:
            raise ValueError(f"negative interval bound {self.lo}")
        if self.hi is not None and self.hi < self.lo:
            raise ValueError(f"empty interval [{self.lo},{self.hi}]")

    @staticmethod
    def point(value: int) -> "Interval":
        """The singleton interval containing exactly ``value``."""
        return Interval(value, value)

    @staticmethod
    def top() -> "Interval":
        """The unbounded interval (all non-negative sizes)."""
        return Interval(0, None)

    @staticmethod
    def from_num(num: Num) -> "Interval":
        """Concretize a :class:`Num` used as a byte count.

        Concrete intervals carry over (clamped at zero — a negative
        request faults before it allocates); any symbolic value is top.
        """
        if num.concrete:
            return Interval(max(num.lo, 0), max(num.hi, 0))
        return Interval.top()

    @property
    def bounded(self) -> bool:
        """True when the upper bound is finite."""
        return self.hi is not None

    @property
    def exact(self) -> Optional[int]:
        """The single member value, or None when not a point."""
        if self.hi is not None and self.hi == self.lo:
            return self.lo
        return None

    def contains(self, value: int) -> bool:
        """Membership test (the concretization relation)."""
        return value >= self.lo and (self.hi is None or value <= self.hi)

    def add(self, other: "Interval") -> "Interval":
        """Interval addition (exact on intervals)."""
        hi = (None if self.hi is None or other.hi is None
              else self.hi + other.hi)
        return Interval(self.lo + other.lo, hi)

    def mul(self, other: "Interval") -> "Interval":
        """Interval multiplication (non-negative operands)."""
        hi = (None if self.hi is None or other.hi is None
              else self.hi * other.hi)
        return Interval(self.lo * other.lo, hi)

    def join(self, other: "Interval") -> "Interval":
        """Least upper bound (convex hull of the union)."""
        hi = (None if self.hi is None or other.hi is None
              else max(self.hi, other.hi))
        return Interval(min(self.lo, other.lo), hi)

    def widen(self, other: "Interval") -> "Interval":
        """Widening: unstable bounds jump to the extreme.

        ``a.widen(a.join(b))`` for any ``b`` yields a value that no
        further join can grow except to the (stable) top, so widening
        chains terminate after at most two steps.
        """
        lo = self.lo if other.lo >= self.lo else 0
        hi: Optional[int]
        if self.hi is None or other.hi is None:
            hi = None
        else:
            hi = self.hi if other.hi <= self.hi else None
        return Interval(lo, hi)

    def map(self, fn: Callable[[int], int]) -> "Interval":
        """Apply a monotonic function to both bounds."""
        return Interval(fn(self.lo),
                        None if self.hi is None else fn(self.hi))

    def describe(self) -> str:
        """``96`` for points, ``[48,256]`` / ``[0,inf]`` otherwise."""
        if self.exact is not None:
            return str(self.lo)
        hi = "inf" if self.hi is None else str(self.hi)
        return f"[{self.lo},{hi}]"
