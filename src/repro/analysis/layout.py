"""Static heap-layout analysis: who can sit next to whom, and how far.

HeapTherapy+'s patches are keyed by allocation site, but knowing *which*
sites matter today requires replaying an attack.  This pass predicts,
with no attack input at all, which allocation-site pairs can become
heap-adjacent — the precondition for any overflow to corrupt a victim —
by composing three ingredients on top of the abstract interpreter from
:mod:`repro.analysis.staticvuln`:

1. **Size/extent intervals.**  Every allocation site gets a request-size
   :class:`~repro.analysis.intervals.Interval` (joined across abstract
   instances, widened after :data:`~repro.analysis.intervals.WIDEN_AFTER`
   joins so repeated joins terminate), and every memory access feeds the
   site's overflow potential: how far past the end (``forward``) or
   below the start (``backward``) its accesses may reach.

2. **Lifetime/co-liveness.**  Each abstract allocation records which
   other allocations are still live (not definitely freed) when it is
   created; two sites *may co-live* when any of their instances do.
   Each site also gets a may-live function range over the call graph:
   the guest functions observed active while an instance is live, plus
   the backward-reachable ancestors of the allocating function
   (:meth:`~repro.program.callgraph.CallGraph.reachable_to` — the
   functions the pointer can escape to by being returned upward).

3. **Allocator geometry.**  :class:`~repro.allocator.libc.LibcAllocator`
   tiles one heap with 16-byte-headed chunks; any two non-``mmap``
   chunks whose lifetimes overlap can be physical neighbours.  Chunk
   rounding (:func:`~repro.allocator.chunk.request_to_chunk_size`) gives
   the *minimal overflow length* ``l``: the fewest bytes past the
   source's bounds that can touch a neighbouring victim's chunk, and the
   fewest that reach its payload.  Requests at or above the ``mmap``
   threshold get dedicated mappings and are excluded from adjacency.

The output is a :class:`LayoutResult`: per-site summaries, the static
adjacency graph of :class:`AdjacentPair` records, and machine-checkable
:class:`LayoutPlan` records (candidate alloc/free interleavings) that a
layout-search engine can concretize.  Soundness contract (checked by the
fuzz cross-check harness in :mod:`repro.fuzz.adjacency`): every overflow
(source, victim) site pair observable at runtime is present in the
graph, with predicted minimal ``l`` no larger than the observed overflow
length.  Precision is best-effort — co-liveness without physical
adjacency produces false pairs, and the measured false-positive rate is
reported in EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, FrozenSet, List, Optional, Set, Tuple

from ..allocator.chunk import CHUNK_ALIGN, HEADER_SIZE, request_to_chunk_size
from ..allocator.libc import bin_kind, small_bin_index
from ..program.program import Program
from .intervals import (
    WIDEN_AFTER,
    Interval,
    Num,
    may_exceed,
    reset_fresh_symbols,
)
from .staticvuln import FREED_YES, PointerVal, _Interp

__all__ = [
    "AdjacentPair",
    "AllocSiteId",
    "BACKWARD_MIN_LEN",
    "LayoutPlan",
    "LayoutResult",
    "PlanStep",
    "SiteSummary",
    "analyze_layout",
    "forward_min_lengths",
]

#: Minimal bytes below a buffer's start that touch the physically
#: preceding chunk (the 16 bytes directly below are the buffer's own
#: header; byte 17 is the neighbour's payload tail).
BACKWARD_MIN_LEN: int = HEADER_SIZE + 1


def forward_min_lengths(size: Interval) -> Tuple[int, int]:
    """Minimal forward overflow lengths for a source of ``size`` bytes.

    Returns ``(to_chunk, to_payload)``: the fewest bytes written past
    the request end that can touch the following chunk (its header) and
    its user payload.  For a request ``r`` with chunk size ``c``, the
    next header starts ``c - HEADER_SIZE - r`` bytes past the end and
    the payload ``c - r`` bytes past it; both are minimized over the
    size interval.  The expression is periodic in ``r`` with period
    ``CHUNK_ALIGN`` (plus the min-chunk plateau), so sampling a
    two-period window from the lower bound is exact even for unbounded
    intervals.
    """
    window_end = size.lo + 2 * CHUNK_ALIGN
    if size.hi is not None:
        window_end = min(size.hi, window_end)
    to_chunk: Optional[int] = None
    to_payload: Optional[int] = None
    for request in range(size.lo, window_end + 1):
        chunk = request_to_chunk_size(request)
        header_gap = chunk - HEADER_SIZE - request + 1
        payload_gap = chunk - request + 1
        if to_chunk is None or header_gap < to_chunk:
            to_chunk = header_gap
        if to_payload is None or payload_gap < to_payload:
            to_payload = payload_gap
    assert to_chunk is not None and to_payload is not None
    return to_chunk, to_payload


# ---------------------------------------------------------------------------
# Result records
# ---------------------------------------------------------------------------


@dataclass(frozen=True, order=True)
class AllocSiteId:
    """Identity of an allocation site: guest caller, API, site label."""

    caller: str
    fun: str
    label: str

    def describe(self) -> str:
        """Canonical ``caller->fun#label`` rendering."""
        return f"{self.caller}->{self.fun}#{self.label}"


@dataclass(frozen=True)
class SiteSummary:
    """Static facts about one allocation site."""

    site: AllocSiteId
    #: Request-size interval (bytes the site may ask for).
    size: Interval
    #: Chunk-size interval (allocator geometry applied).
    chunk: Interval
    #: Free-list class: ``small``, ``large``, ``mmap`` or a mixed
    #: ``lo..hi`` range when the interval spans classes.
    bin: str
    #: Exact-size small-bin index when the site always lands in one.
    small_bin: Optional[int]
    #: Abstract instances the interpreter created for this site.
    instances: int
    #: Guest functions that may execute while an instance is live.
    may_live_in: Tuple[str, ...]
    #: Overflow directions with potential (``forward``/``backward``).
    overflow: Tuple[str, ...]

    def describe(self) -> str:
        """One-line site summary."""
        parts = [f"size {self.size.describe()}",
                 f"chunk {self.chunk.describe()}", f"bin {self.bin}"]
        if self.overflow:
            parts.append("overflow " + "/".join(self.overflow))
        return f"{self.site.describe()}: " + ", ".join(parts)


@dataclass(frozen=True)
class AdjacentPair:
    """One edge of the static adjacency graph."""

    source: AllocSiteId
    victim: AllocSiteId
    #: ``forward`` (overflow past the end) or ``backward`` (underflow
    #: below the start).
    direction: str
    #: Minimal bytes past the source's bounds that touch the victim's
    #: chunk (interval lower bound — the soundness side of ``l``).
    min_overflow_len: int
    #: Minimal bytes past the source's bounds that reach the victim's
    #: user payload.
    min_payload_len: int
    reason: str

    def describe(self) -> str:
        """One-line pair rendering."""
        arrow = "=>" if self.direction == "forward" else "<="
        return (f"{self.source.describe()} {arrow} "
                f"{self.victim.describe()} [{self.direction}] "
                f"l>={self.min_overflow_len} "
                f"(payload {self.min_payload_len})")


@dataclass(frozen=True)
class PlanStep:
    """One abstract step of a layout plan."""

    #: ``alloc``, ``free`` or ``overflow``.
    action: str
    site: AllocSiteId
    note: str


@dataclass(frozen=True)
class LayoutPlan:
    """A candidate alloc/free interleaving realizing one adjacency.

    Machine-checkable seed for the future layout-search engine: the
    steps name sites, not addresses, and the engine's job is to find a
    concrete input driving the program through them.
    """

    source: AllocSiteId
    victim: AllocSiteId
    direction: str
    #: ``sequential`` (fresh chunks carved back to back) or
    #: ``hole-reuse`` (a freed same-class chunk is reoccupied).
    kind: str
    steps: Tuple[PlanStep, ...]

    def describe(self) -> str:
        """Multi-line plan rendering."""
        lines = [f"plan [{self.kind}] {self.source.describe()} "
                 f"-{self.direction}-> {self.victim.describe()}"]
        for index, step in enumerate(self.steps, 1):
            lines.append(f"  {index}. {step.action} "
                         f"{step.site.describe()}: {step.note}")
        return "\n".join(lines)


@dataclass
class LayoutResult:
    """Everything the layout pass derived for one program."""

    program_name: str
    sites: List[SiteSummary] = field(default_factory=list)
    pairs: List[AdjacentPair] = field(default_factory=list)
    plans: List[LayoutPlan] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)

    @property
    def has_findings(self) -> bool:
        """True when the adjacency graph is non-empty."""
        return bool(self.pairs)

    def pairs_for(self, source: AllocSiteId) -> List[AdjacentPair]:
        """All adjacency edges whose overflow source is ``source``."""
        return [pair for pair in self.pairs if pair.source == source]

    def render(self, verbose: bool = False) -> str:
        """Human-readable report; ``verbose`` adds sites and plans."""
        lines = [f"layout {self.program_name}: {len(self.sites)} "
                 f"site(s), {len(self.pairs)} adjacent pair(s)"]
        if verbose:
            lines.extend("  site " + s.describe() for s in self.sites)
        lines.extend("  pair " + p.describe() for p in self.pairs)
        if verbose:
            for plan in self.plans:
                lines.append("  " + plan.describe().replace("\n", "\n  "))
        lines.extend("  note: " + n for n in self.notes)
        return "\n".join(lines)

    def to_dict(self) -> Dict[str, Any]:
        """Deterministic JSON form (stable ordering, no floats)."""
        def interval(value: Interval) -> List[Optional[int]]:
            return [value.lo, value.hi]

        return {
            "program": self.program_name,
            "sites": [{
                "site": s.site.describe(),
                "size": interval(s.size),
                "chunk": interval(s.chunk),
                "bin": s.bin,
                "small_bin": s.small_bin,
                "instances": s.instances,
                "may_live_in": list(s.may_live_in),
                "overflow": list(s.overflow),
            } for s in self.sites],
            "pairs": [{
                "source": p.source.describe(),
                "victim": p.victim.describe(),
                "direction": p.direction,
                "min_overflow_len": p.min_overflow_len,
                "min_payload_len": p.min_payload_len,
                "reason": p.reason,
            } for p in self.pairs],
            "plans": [{
                "source": plan.source.describe(),
                "victim": plan.victim.describe(),
                "direction": plan.direction,
                "kind": plan.kind,
                "steps": [{"action": step.action,
                           "site": step.site.describe(),
                           "note": step.note}
                          for step in plan.steps],
            } for plan in self.plans],
            "notes": list(self.notes),
        }


# ---------------------------------------------------------------------------
# The recording interpreter
# ---------------------------------------------------------------------------


@dataclass
class _OverflowRecord:
    """Per-origin overflow potential; ``None`` reach means unbounded."""

    forward: bool = False
    forward_reach: Optional[int] = 0
    backward: bool = False
    backward_reach: Optional[int] = 0
    why: str = ""


class _LayoutInterp(_Interp):
    """The staticvuln interpreter plus layout-relevant event recording.

    Subclassing keeps one abstract semantics: whatever the vulnerability
    detector believes about sizes, frees and accesses, the layout pass
    sees identically — the two can never disagree about a program.
    """

    def __init__(self, program: Program) -> None:
        super().__init__(program)
        self._seq = 0
        #: origin -> sequence number of its allocation event.
        self.alloc_seq: Dict[int, int] = {}
        #: origin -> sequence number of its latest free event.
        self.free_seq: Dict[int, int] = {}
        #: origin -> origins not definitely freed when it was created.
        self.colive: Dict[int, FrozenSet[int]] = {}
        #: origin -> overflow potential of accesses through it.
        self.overflow: Dict[int, _OverflowRecord] = {}
        #: (sequence, guest stack snapshot) per heap event.
        self.heap_events: List[Tuple[int, Tuple[str, ...]]] = []

    def _tick(self) -> int:
        self._seq += 1
        self.heap_events.append((self._seq, tuple(self.guest_stack)))
        return self._seq

    # -- recording overrides ----------------------------------------------

    def _heap_alloc(self, fun: str, node: Any, env: Dict[str, Any],
                    depth: int) -> Any:
        pointer = super()._heap_alloc(fun, node, env, depth)
        if isinstance(pointer, PointerVal):
            origin = pointer.origin
            self.alloc_seq[origin] = self._tick()
            self.colive[origin] = frozenset(
                other for other, state in self.freed.items()
                if other != origin and state != FREED_YES)
        return pointer

    def _heap_free(self, pointer: Any, refree_ok: bool = False) -> None:
        if isinstance(pointer, PointerVal) \
                and pointer.origin in self.allocs:
            # Keep the *latest* free: may-live must over-approximate.
            self.free_seq[pointer.origin] = self._tick()
        super()._heap_free(pointer, refree_ok)

    def _access(self, pointer: Any, length: Num, writes: bool, why: str,
                leaks: bool = False) -> None:
        if isinstance(pointer, PointerVal):
            alloc = self.allocs.get(pointer.origin)
            if alloc is not None:
                self._record_reach(pointer, length, alloc.size, why)
        super()._access(pointer, length, writes, why, leaks)

    def _record_reach(self, pointer: PointerVal, length: Num,
                      size: Num, why: str) -> None:
        """Fold one access into the origin's overflow potential."""
        record = self.overflow.get(pointer.origin)
        if record is None:
            record = _OverflowRecord()
        offset = pointer.offset
        # Backward: the access may start below the buffer.  The
        # vulnerability detector does not model this (a negative-offset
        # extent never exceeds the size), so the layout pass must.
        if offset.concrete:
            if offset.lo < 0:
                record.backward = True
                depth = -offset.lo
                if record.backward_reach is not None:
                    record.backward_reach = max(record.backward_reach,
                                                depth)
                record.why = record.why or f"{why} at negative offset"
        elif offset.tainted or offset.lo < 0:
            record.backward = True
            record.backward_reach = None
            record.why = record.why or f"{why} at unproven offset"
        # Forward: reuse the detector's own overflow predicate.
        extent = offset.add(length)
        reason = may_exceed(extent, size)
        if reason is not None:
            record.forward = True
            diff = extent.sub(size)
            if diff.concrete and record.forward_reach is not None:
                record.forward_reach = max(record.forward_reach, diff.hi)
            else:
                record.forward_reach = None
            record.why = record.why or f"{why}: {reason}"
        if record.forward or record.backward:
            self.overflow[pointer.origin] = record


# ---------------------------------------------------------------------------
# Aggregation: origins -> sites -> adjacency graph -> plans
# ---------------------------------------------------------------------------


@dataclass
class _SiteAccum:
    """Mutable per-site aggregation state."""

    site: AllocSiteId
    size: Interval
    joins: int = 0
    origins: List[int] = field(default_factory=list)
    live_in: Set[str] = field(default_factory=set)
    forward: bool = False
    forward_reach: Optional[int] = 0
    backward: bool = False
    backward_reach: Optional[int] = 0
    why: str = ""

    def absorb_size(self, other: Interval) -> None:
        """Join (widening after :data:`WIDEN_AFTER` joins) a new size."""
        self.joins += 1
        joined = self.size.join(other)
        self.size = (self.size.widen(joined)
                     if self.joins > WIDEN_AFTER else joined)

    def absorb_overflow(self, record: _OverflowRecord) -> None:
        if record.forward:
            self.forward = True
            if record.forward_reach is None:
                self.forward_reach = None
            elif self.forward_reach is not None:
                self.forward_reach = max(self.forward_reach,
                                         record.forward_reach)
        if record.backward:
            self.backward = True
            if record.backward_reach is None:
                self.backward_reach = None
            elif self.backward_reach is not None:
                self.backward_reach = max(self.backward_reach,
                                          record.backward_reach)
        self.why = self.why or record.why


def _bin_label(chunk: Interval, size: Interval) -> Tuple[str, bool]:
    """Free-list class label and whether the site is *always* mmapped."""
    lo_kind = bin_kind(size.lo)
    hi_kind = "mmap" if size.hi is None else bin_kind(size.hi)
    label = lo_kind if lo_kind == hi_kind else f"{lo_kind}..{hi_kind}"
    return label, lo_kind == "mmap"


def _site_small_bin(size: Interval) -> Optional[int]:
    """The single exact-size small bin, when the whole interval maps
    to one."""
    lo_bin = small_bin_index(size.lo)
    hi_bin = (small_bin_index(size.hi)
              if size.hi is not None else None)
    return lo_bin if lo_bin is not None and lo_bin == hi_bin else None


def _live_functions(interp: _LayoutInterp, origin: int,
                    caller: str) -> FrozenSet[str]:
    """Guest functions that may execute while ``origin`` is live.

    Union of the guest-stack snapshots of every heap event inside the
    origin's [alloc, latest-free] window (unbounded when not definitely
    freed), extended by the call-graph ancestors of the allocating
    function — the functions the pointer may escape to by being
    returned upward (a backward reachability over the call graph).
    """
    start = interp.alloc_seq.get(origin, 0)
    if interp.freed.get(origin) == FREED_YES \
            and origin in interp.free_seq:
        end: float = interp.free_seq[origin]
    else:
        end = float("inf")
    functions: Set[str] = set()
    for seq, stack in interp.heap_events:
        if start <= seq <= end:
            functions.update(stack)
    functions.update(interp.graph.reachable_to([caller]))
    return frozenset(functions)


def analyze_layout(program: Program) -> LayoutResult:
    """Run the layout pass over ``program``.

    Deterministic: repeated calls produce identical results (including
    ``to_dict()`` serializations) for the same program.
    """
    reset_fresh_symbols()
    interp = _LayoutInterp(program)
    result = LayoutResult(program_name=program.name)
    try:
        interp.run()
    except RecursionError:
        result.notes.append("layout analysis aborted: recursion limit")
        return result

    # -- sites -------------------------------------------------------------
    accums: Dict[AllocSiteId, _SiteAccum] = {}
    origin_site: Dict[int, AllocSiteId] = {}
    for origin in sorted(interp.allocs):
        alloc = interp.allocs[origin]
        site = AllocSiteId(alloc.caller, alloc.fun, alloc.label)
        origin_site[origin] = site
        size = Interval.from_num(alloc.size)
        accum = accums.get(site)
        if accum is None:
            accum = _SiteAccum(site=site, size=size)
            accums[site] = accum
        else:
            accum.absorb_size(size)
        accum.origins.append(origin)
        accum.live_in.update(_live_functions(interp, origin,
                                             alloc.caller))
        record = interp.overflow.get(origin)
        if record is not None:
            accum.absorb_overflow(record)

    always_mmap: Set[AllocSiteId] = set()
    for site in sorted(accums):
        accum = accums[site]
        chunk = accum.size.map(request_to_chunk_size)
        bin_name, is_mmap = _bin_label(chunk, accum.size)
        if is_mmap:
            always_mmap.add(site)
        directions = []
        if accum.forward:
            directions.append("forward")
        if accum.backward:
            directions.append("backward")
        result.sites.append(SiteSummary(
            site=site, size=accum.size, chunk=chunk, bin=bin_name,
            small_bin=_site_small_bin(accum.size),
            instances=len(accum.origins),
            may_live_in=tuple(sorted(accum.live_in)),
            overflow=tuple(directions)))

    # -- adjacency ---------------------------------------------------------
    pairs: Dict[Tuple[AllocSiteId, AllocSiteId, str], AdjacentPair] = {}
    for s_origin in sorted(interp.overflow):
        record = interp.overflow[s_origin]
        source = origin_site[s_origin]
        if source in always_mmap:
            continue
        source_accum = accums[source]
        for v_origin in sorted(interp.allocs):
            if v_origin == s_origin:
                continue
            victim = origin_site[v_origin]
            if victim in always_mmap:
                continue
            if v_origin not in interp.colive.get(s_origin, frozenset()) \
                    and s_origin not in interp.colive.get(v_origin,
                                                          frozenset()):
                continue
            for direction in ("forward", "backward"):
                if direction == "forward":
                    if not record.forward:
                        continue
                    min_chunk, min_payload = forward_min_lengths(
                        source_accum.size)
                    reach = record.forward_reach
                else:
                    if not record.backward:
                        continue
                    min_chunk = min_payload = BACKWARD_MIN_LEN
                    reach = record.backward_reach
                if reach is not None and reach < min_chunk:
                    # The access provably cannot reach past its own
                    # chunk slack (or own header, backward).
                    continue
                key = (source, victim, direction)
                if key not in pairs:
                    pairs[key] = AdjacentPair(
                        source=source, victim=victim,
                        direction=direction,
                        min_overflow_len=min_chunk,
                        min_payload_len=min_payload,
                        reason=(record.why or "overflow potential")
                        + f"; co-live with {victim.describe()}")
    result.pairs = [pairs[key] for key in sorted(pairs)]

    # -- plans -------------------------------------------------------------
    for pair in result.pairs:
        result.plans.extend(_plans_for(pair, accums))
    if interp.notes:
        result.notes.extend(interp.notes)
    return result


def _plans_for(pair: AdjacentPair,
               accums: Dict[AllocSiteId, _SiteAccum]) -> List[LayoutPlan]:
    """Candidate interleavings realizing ``pair``'s adjacency."""
    source, victim = pair.source, pair.victim
    if pair.direction == "forward":
        first, second = source, victim
        overflow_note = (f"write >= {pair.min_overflow_len} byte(s) "
                         f"past the end of the source buffer")
    else:
        first, second = victim, source
        overflow_note = (f"write >= {pair.min_overflow_len} byte(s) "
                         f"below the start of the source buffer")
    sequential = LayoutPlan(
        source=source, victim=victim, direction=pair.direction,
        kind="sequential",
        steps=(
            PlanStep("alloc", first,
                     "carve a fresh chunk from the top region"),
            PlanStep("alloc", second,
                     "carve the physically following chunk"),
            PlanStep("overflow", source, overflow_note),
        ))
    plans = [sequential]
    src_chunk = accums[source].size.map(request_to_chunk_size)
    vic_chunk = accums[victim].size.map(request_to_chunk_size)
    if _intervals_intersect(src_chunk, vic_chunk):
        # Shared size class: a freed hole of one can be reoccupied by
        # the other, steering the source next to an existing victim.
        plans.append(LayoutPlan(
            source=source, victim=victim, direction=pair.direction,
            kind="hole-reuse",
            steps=(
                PlanStep("alloc", first,
                         "allocate a placeholder in the shared size "
                         "class"),
                PlanStep("alloc", second,
                         "carve the physically following chunk"),
                PlanStep("free", first,
                         "free the placeholder, leaving an exact-size "
                         "hole (LIFO bin)"),
                PlanStep("alloc", first,
                         "the next same-class request reoccupies the "
                         "hole"),
                PlanStep("overflow", source, overflow_note),
            )))
    return plans


def _intervals_intersect(a: Interval, b: Interval) -> bool:
    return ((b.hi is None or a.lo <= b.hi)
            and (a.hi is None or b.lo <= a.hi))
