#!/usr/bin/env python3
"""Offline attack forensics with the shadow analyzer.

Deep-dives two very different vulnerabilities through the heavyweight
analysis side of HeapTherapy+:

* optipng-like use after free (CVE-2015-7801): watch the freed-block
  quarantine catch a stale dereference and attribute it to the
  allocation context of the freed descriptor;
* GhostXPS-like uninitialized read (CVE-2017-9740): watch origin
  tracking walk leaked bytes back to the under-filled glyph buffer.

Run:  python examples/attack_forensics.py
"""

from __future__ import annotations

from repro import HeapTherapy
from repro.vulntypes import VulnType
from repro.workloads.vulnerable import GhostXpsRenderer, OptiPngOptimizer


def investigate(program, attack_input, benign_input) -> None:
    print(f"\n{'=' * 70}")
    print(f"program: {program.name}  ({program.reference}, "
          f"{program.vulnerability})")
    print("=" * 70)
    system = HeapTherapy(program)

    print("\n-- native attack ------------------------------------------")
    native = system.run_native(attack_input)
    print(f"attack succeeded natively: "
          f"{program.attack_succeeded(native.result)}")
    if native.result.facts:
        print(f"observed effects: {native.result.facts}")

    print("\n-- offline replay under shadow memory ---------------------")
    generation = system.generate_patches(attack_input)
    print(generation.report.render())
    for warning in generation.report.warnings:
        if warning.buffer is None:
            continue
        buffer = warning.buffer
        print(f"\nvulnerable buffer #{buffer.serial}:")
        print(f"  allocated via {buffer.fun} "
              f"(allocation-time CCID 0x{buffer.ccid:x})")
        print(f"  size {buffer.size} bytes at 0x{buffer.address:012x}")
        sites = [program.graph.site_by_id(s) for s in buffer.context]
        chain = " -> ".join([sites[0].caller] +
                            [site.callee for site in sites])
        print(f"  true allocation context: {chain}")

    print("\n-- sanity: benign replay raises nothing --------------------")
    benign_gen = system.generate_patches(benign_input)
    print(f"warnings on benign input: {len(benign_gen.report)}")

    print("\n-- the patch defeats the attack ----------------------------")
    defended = system.run_defended(generation.patches, attack_input)
    outcome = None if defended.blocked else defended.result
    print(f"defended attack succeeded: "
          f"{program.attack_succeeded(outcome)}")
    if defended.completed and defended.result.facts:
        print(f"defended observed effects: {defended.result.facts}")
    if generation.patches and any(
            p.vuln & VulnType.USE_AFTER_FREE for p in generation.patches):
        quarantined = len(defended.allocator.quarantine)
        print(f"buffers held in the deferred-free queue: {quarantined}")

    print("\n-- defended heap map ----------------------------------------")
    from repro.tools import render_heap
    print(render_heap(defended.allocator.underlying,
                      defended=defended.allocator))


def main() -> None:
    investigate(OptiPngOptimizer(),
                OptiPngOptimizer.attack_input(),
                OptiPngOptimizer.benign_input())
    investigate(GhostXpsRenderer(),
                GhostXpsRenderer.attack_input(),
                GhostXpsRenderer.benign_input())


if __name__ == "__main__":
    main()
