#!/usr/bin/env python3
"""Quickstart: patch a Heartbleed-style service end to end.

This walks the complete HeapTherapy+ pipeline on the library's flagship
workload — a TLS-heartbeat service with the CVE-2014-0160 bug pattern:

1. demonstrate the attack against the native service,
2. replay the single attack input under the offline shadow analyzer and
   generate code-less patches,
3. install the patches (a two-line configuration file) and show that the
   same attack is defeated while normal traffic is unaffected.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from repro import HeapTherapy, Strategy
from repro.defense.patch_table import PatchTable
from repro.patch import config as patch_config
from repro.workloads.vulnerable import HeartbleedService
from repro.workloads.vulnerable.heartbleed import SESSION_SECRET


def banner(text: str) -> None:
    print(f"\n=== {text} " + "=" * max(0, 66 - len(text)))


def main() -> None:
    service = HeartbleedService()
    system = HeapTherapy(service, strategy=Strategy.INCREMENTAL,
                         scheme="pcc")

    banner("1. The attack works against the unpatched service")
    attack = HeartbleedService.attack_input()
    print(f"attacker sends: claimed_length={attack.claimed_length}, "
          f"payload={attack.payload!r}")
    native = system.run_native(attack)
    response = native.result.response
    print(f"service replied with {len(response)} bytes")
    print(f"secret leaked: {SESSION_SECRET in response}")
    assert service.attack_succeeded(native.result)

    banner("2. Offline patch generation from that one attack input")
    generation = system.generate_patches(attack)
    print(f"shadow analysis raised {len(generation.report)} warning(s):")
    print(generation.report.render())
    print("\ngenerated patches (the configuration file):")
    config_text = patch_config.dumps(generation.patches)
    print(config_text)

    banner("3. Code-less patch deployment")
    with tempfile.TemporaryDirectory() as tmp:
        config_path = Path(tmp) / "heap_patches.conf"
        patch_config.save(generation.patches, config_path)
        table = PatchTable.from_config_file(config_path)
        print(f"loaded {len(table)} patch(es) into the read-only hash "
              f"table from {config_path.name}")

        print("\nreplaying the full attack (overread past the buffer):")
        defended = system.run_defended(table, attack)
        print(f"  -> blocked by guard page: {defended.blocked}"
              f" ({defended.fault})")

        print("\nreplaying the uninitialized-read-only variant:")
        uninit = system.run_defended(
            table, HeartbleedService.uninit_only_input())
        body = uninit.result.response[6:]
        print(f"  -> completed; leaked payload beyond echo is all zeros: "
              f"{all(b == 0 for b in body)}")
        assert not service.attack_succeeded(uninit.result)

        print("\nbenign heartbeat under the same patches:")
        benign = system.run_defended(table,
                                     HeartbleedService.benign_input())
        print(f"  -> served correctly: {service.benign_works(benign.result)}")
        print(f"  -> overhead decomposition (cycles): "
              f"{ {k: round(v) for k, v in benign.meter.snapshot().items()} }")

    banner("Done: attack defeated, service unchanged, no code modified")


if __name__ == "__main__":
    main()
