#!/usr/bin/env python3
"""Mini paper reproduction: the headline tables at demo scale.

The full benchmark harness (``pytest benchmarks/``) regenerates every
table and figure; this example condenses the two headline comparisons to
a few seconds of runtime so you can watch them come out of the public
API directly:

* §VIII-B1 / Table III — the four encoding strategies on three
  SPEC-like benchmarks (dynamic overhead and static size),
* Table II — the effectiveness cycle on three CVE workloads.

Run:  python examples/paper_tables_mini.py
"""

from __future__ import annotations

from repro.allocator import LibcAllocator
from repro.ccencoding import (
    SCHEMES,
    EncodingRuntime,
    InstrumentationPlan,
    Strategy,
)
from repro.core.pipeline import HeapTherapy
from repro.program import CycleMeter, Process
from repro.vulntypes import VulnType
from repro.workloads.spec.profiles import profile_by_name
from repro.workloads.spec.synth import SyntheticSpecProgram
from repro.workloads.vulnerable import (
    GhostXpsRenderer,
    HeartbleedService,
    OptiPngOptimizer,
)

BENCHMARKS = ("400.perlbench", "456.hmmer", "473.astar")
SCALE = 0.05


def encoding_table() -> None:
    print("=" * 72)
    print("§VIII-B1 / Table III (mini) — targeted calling-context encoding")
    print("=" * 72)
    print(f"{'benchmark':<16} {'strategy':<12} {'sites':>6} "
          f"{'size bytes':>11} {'dyn overhead':>13}")
    for name in BENCHMARKS:
        program = SyntheticSpecProgram(profile_by_name(name), scale=SCALE)
        graph = program.graph
        for strategy in Strategy:
            plan = InstrumentationPlan.build(graph,
                                             graph.allocation_targets,
                                             strategy)
            meter = CycleMeter()
            runtime = EncodingRuntime(SCHEMES["pcc"].build(plan), meter)
            process = Process(graph, heap=LibcAllocator(),
                              context_source=runtime, meter=meter,
                              record_allocations=False)
            process.run(program)
            overhead = (meter.category("encoding")
                        / meter.category("base") * 100)
            print(f"{name:<16} {strategy.value:<12} "
                  f"{plan.site_count:>6} {plan.inserted_bytes:>11} "
                  f"{overhead:>12.3f}%")
        print()
    print("(paper: FCS 2.4% -> Incremental 0.4% average, ~6x; the strict "
          "ordering is the claim)\n")


def effectiveness_table() -> None:
    print("=" * 72)
    print("Table II (mini) — patch generation and protection")
    print("=" * 72)
    print(f"{'program':<16} {'vuln':<14} {'patch type':<17} "
          f"{'defeated':<9} benign")
    for program in (HeartbleedService(), GhostXpsRenderer(),
                    OptiPngOptimizer()):
        system = HeapTherapy(program)
        generation = system.generate_patches(program.attack_input())
        detected = VulnType.NONE
        for patch in generation.patches:
            detected |= patch.vuln
        defended = system.run_defended(generation.patches,
                                       program.attack_input())
        outcome = None if defended.blocked else defended.result
        defeated = not program.attack_succeeded(outcome)
        benign = system.run_defended(generation.patches,
                                     program.benign_input())
        benign_ok = program.benign_works(benign.result)
        print(f"{program.name:<16} {program.vulnerability:<14} "
              f"{detected.describe():<17} "
              f"{'yes' if defeated else 'NO':<9} "
              f"{'yes' if benign_ok else 'NO'}")
    print("\n(full 30-program sweep: pytest benchmarks/"
          "bench_effectiveness.py)")


def main() -> None:
    encoding_table()
    effectiveness_table()


if __name__ == "__main__":
    main()
