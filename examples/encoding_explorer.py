#!/usr/bin/env python3
"""Targeted calling-context encoding, explored on the paper's Figure 2.

Shows, for one call graph and each strategy (FCS / TCS / Slim /
Incremental):

* which call sites get instrumented and how many are saved,
* the CCIDs each calling context of each target receives under PCC,
* exact decoding with the PCCE additive scheme, and
* the dynamic encoding cost of running a program under each strategy.

Run:  python examples/encoding_explorer.py
"""

from __future__ import annotations

from repro.allocator import LibcAllocator
from repro.ccencoding import (
    SCHEMES,
    EncodingRuntime,
    InstrumentationPlan,
    Strategy,
)
from repro.program import CallGraph, CycleMeter, Process, Program


def figure2_graph() -> CallGraph:
    graph = CallGraph(entry="A")
    for caller, callee in [("A", "B"), ("A", "C"), ("B", "D"), ("B", "T2"),
                           ("C", "E"), ("C", "F"), ("D", "T1"), ("D", "H"),
                           ("E", "T1"), ("F", "T1"), ("H", "I")]:
        graph.add_call_site(caller, callee)
    return graph


class Figure2Program(Program):
    """Executes every path of the Figure 2 graph once."""

    name = "figure2"

    def build_graph(self) -> CallGraph:
        return figure2_graph()

    def main(self, p: Process):
        p.call("B", self._b)
        p.call("C", self._c)

    def _b(self, p: Process):
        p.call("D", self._d)
        p.call("T2", self._target)

    def _c(self, p: Process):
        p.call("E", lambda q: q.call("T1", self._target))
        p.call("F", lambda q: q.call("T1", self._target))

    def _d(self, p: Process):
        p.call("T1", self._target)
        p.call("H", lambda q: q.call("I", self._target_noop))

    def _target(self, p: Process):
        p.compute(1)

    def _target_noop(self, p: Process):
        p.compute(1)


def main() -> None:
    graph = figure2_graph()
    targets = ["T1", "T2"]
    program = Figure2Program()

    print("Call graph (paper Figure 2):")
    print(graph.to_dot())

    print(f"\n{'strategy':<12} {'sites':>5} {'saved':>6}  instrumented "
          f"call sites")
    print("-" * 72)
    plans = {}
    for strategy in Strategy:
        plan = InstrumentationPlan.build(graph, targets, strategy)
        plans[strategy] = plan
        edges = sorted(f"{graph.site_by_id(s).caller}->"
                       f"{graph.site_by_id(s).callee}" for s in plan.sites)
        saved = graph.site_count - plan.site_count
        print(f"{strategy.value:<12} {plan.site_count:>5} {saved:>6}  "
              f"{', '.join(edges)}")

    print("\nPCC CCIDs per calling context (Incremental plan):")
    codec = SCHEMES["pcc"].build(plans[Strategy.INCREMENTAL])
    for target in targets:
        for context in graph.enumerate_contexts(target):
            path = " -> ".join(["A"] + [site.callee for site in context])
            print(f"  {target}: {path:<28} ccid=0x"
                  f"{codec.encode_path(context):016x}")

    print("\nPCCE exact decoding (TCS plan):")
    pcce = SCHEMES["pcce"].build(plans[Strategy.TCS])
    for target in targets:
        for context in graph.enumerate_contexts(target):
            ccid = pcce.encode_path(context)
            decoded = pcce.decode(target, ccid)
            path = " -> ".join(["A"] + [site.callee for site in decoded])
            print(f"  {target}: ccid={ccid} decodes to {path}")

    print("\nDynamic encoding cost (cycles) of one full execution:")
    for strategy in Strategy:
        meter = CycleMeter()
        runtime = EncodingRuntime(SCHEMES["pcc"].build(plans[strategy]),
                                  meter)
        process = Process(graph, heap=LibcAllocator(),
                          context_source=runtime, meter=meter)
        process.run(program)
        print(f"  {strategy.value:<12} encoding={meter.category('encoding'):>4.0f}"
              f"  updates={runtime.updates_executed}")


if __name__ == "__main__":
    main()
