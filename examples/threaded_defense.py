#!/usr/bin/env python3
"""Thread-local calling contexts over one shared, defended heap.

The paper stores the current CCID in a *thread-local* integer: every
thread tracks its own calling context while the patch table, interposer
and heap are shared process-wide.  This example runs four guest threads
— two allocating through a patched context, two through a clean one —
under a deterministic lock-step scheduler and shows:

* each thread's CCIDs are exactly its own (no cross-thread pollution,
  however the interleaving lands),
* the shared defense enhances precisely the patched context's buffers,
  on whichever thread they come from.

Run:  python examples/threaded_defense.py
"""

from __future__ import annotations

from repro.allocator import LibcAllocator
from repro.ccencoding import (
    SCHEMES,
    EncodingRuntime,
    InstrumentationPlan,
    Strategy,
)
from repro.defense import DefendedAllocator, DefenseReport, PatchTable
from repro.patch.model import HeapPatch
from repro.program import (
    CallGraph,
    CycleMeter,
    DirectMonitor,
    Process,
    Program,
)
from repro.program.threads import (
    ThreadLocalContextSource,
    ThreadedExecution,
)
from repro.vulntypes import VulnType


class Worker(Program):
    """Allocates repeatedly through a role-specific context."""

    name = "worker"

    def build_graph(self) -> CallGraph:
        graph = CallGraph()
        graph.add_call_site("main", "risky_parser")
        graph.add_call_site("main", "safe_logger")
        graph.add_call_site("risky_parser", "malloc")
        graph.add_call_site("safe_logger", "malloc")
        graph.add_call_site("main", "free")
        return graph

    def main(self, p: Process, role: str, rounds: int):
        ccids = set()
        for index in range(rounds):
            buf = p.call(role, lambda q: q.malloc(96))
            ccids.add(p.allocations[-1].ccid)
            p.write(buf, bytes([index % 251]) * 96)
            p.free(buf)
        return ccids


def main() -> None:
    program = Worker()
    plan = InstrumentationPlan.build(program.graph, ["malloc"],
                                     Strategy.INCREMENTAL)
    codec = SCHEMES["pcc"].build(plan)

    # Discover the risky context's CCID with a probe run.
    probe = Process(program.graph, heap=LibcAllocator(),
                    context_source=EncodingRuntime(codec))
    probe.run(program, "risky_parser", 1)
    risky_ccid = probe.allocations[-1].ccid
    print(f"patching context ccid=0x{risky_ccid:x} "
          f"(main -> risky_parser -> malloc) with uninit+uaf defenses\n")

    # One shared defended heap; CCIDs read through a thread-local source.
    tls = ThreadLocalContextSource()
    meter = CycleMeter()
    defended = DefendedAllocator(
        LibcAllocator(),
        PatchTable([HeapPatch("malloc", risky_ccid,
                              VulnType.UNINIT_READ
                              | VulnType.USE_AFTER_FREE)]),
        context_source=tls, meter=meter)

    roles = ["risky_parser", "safe_logger", "risky_parser", "safe_logger"]
    jobs = []
    for role in roles:
        process = Process(program.graph,
                          monitor=DirectMonitor(defended.memory, defended,
                                                meter),
                          context_source=EncodingRuntime(codec))
        jobs.append((process, program, (role, 5)))

    execution = ThreadedExecution(jobs, seed="demo", min_slice=1,
                                  max_slice=4, thread_local_source=tls)
    results = execution.run()

    print(f"{len(roles)} guest threads, "
          f"{execution.scheduler.switches} context switches, "
          f"{execution.scheduler.checkpoints} preemption points\n")
    for thread_id, (role, result) in enumerate(zip(roles, results)):
        ccids = ", ".join(f"0x{c:x}" for c in sorted(result.result))
        marker = "  <- patched" if risky_ccid in result.result else ""
        print(f"thread {thread_id} ({role:<12}): ccids {{{ccids}}}{marker}")

    print()
    print(DefenseReport.from_allocator(defended).render())
    deferred = defended.enhanced_counts[VulnType.USE_AFTER_FREE]
    print(f"\n=> exactly the {deferred} risky-context allocations "
          f"(2 threads x 5 rounds) were enhanced; the safe threads' 10 "
          f"buffers were untouched.")


if __name__ == "__main__":
    main()
