#!/usr/bin/env python3
"""Protecting a live service: overhead and patch deployment.

Measures what a production operator would care about before deploying
HeapTherapy+ in front of a service:

1. throughput of an nginx-like worker across concurrency levels, native
   versus defended (the §VIII-B2 experiment),
2. the cost decomposition of the defense (interposition / metadata /
   patch-table lookups / encoding),
3. the marginal cost of actually installing patches — from a rare
   context (realistic) up to the hottest context (worst case), and
4. the same for a MySQL-like engine, showing why buffer-pooled services
   see almost no overhead.

Run:  python examples/service_protection.py
"""

from __future__ import annotations

from repro import HeapTherapy
from repro.defense.patch_table import PatchTable
from repro.patch.model import HeapPatch
from repro.vulntypes import VulnType
from repro.workloads.services import (
    MySqlServer,
    NginxServer,
    measure_throughput,
)

REQUESTS = 300


def main() -> None:
    print("=" * 70)
    print("nginx-like worker: throughput under the defense")
    print("=" * 70)
    print(f"{'concurrency':>11}  {'native':>10}  {'defended':>10}  "
          f"{'overhead':>8}")
    for concurrency in (20, 60, 100, 150, 200):
        result = measure_throughput(NginxServer(), "nginx", REQUESTS,
                                    (REQUESTS, concurrency))
        print(f"{concurrency:>11}  {result.native_throughput:>10.2f}  "
              f"{result.defended_throughput:>10.2f}  "
              f"{result.overhead_pct:>7.2f}%")
    print("(throughput in requests per million simulated cycles; "
          "paper: 4.2% average)")

    print("\ncost decomposition of one defended run:")
    system = HeapTherapy(NginxServer())
    defended = system.run_defended(PatchTable.empty(), REQUESTS, 20)
    total = defended.meter.total
    for category, cycles in sorted(defended.meter.snapshot().items(),
                                   key=lambda item: -item[1]):
        print(f"  {category:<10} {cycles:>12.0f} cycles "
              f"({cycles / total * 100:5.2f}%)")

    print("\nmarginal cost of installing a patch, by context heat:")
    profiling = system.run_native(REQUESTS, 20)
    native_cycles = profiling.meter.total
    ranked = profiling.process.alloc_profile.most_common()
    p0 = system.run_defended(PatchTable.empty(), REQUESTS, 20)
    print(f"  {'patched context':<28} {'allocs':>7} {'overhead':>9}")
    print(f"  {'(none)':<28} {'-':>7} "
          f"{(p0.meter.total / native_cycles - 1) * 100:>8.2f}%")
    for label, index in (("coldest (realistic CVE path)", len(ranked) - 1),
                         ("median frequency", len(ranked) // 2),
                         ("hottest (worst case)", 0)):
        (fun, ccid), count = ranked[index]
        run = system.run_defended(
            PatchTable([HeapPatch(fun, ccid, VulnType.OVERFLOW)]),
            REQUESTS, 20)
        overhead = (run.meter.total / native_cycles - 1) * 100
        print(f"  {label:<28} {count:>7} {overhead:>8.2f}%")
    print("  (guard pages cost two mprotect calls per buffer lifetime, "
          "so patch cost\n   scales with the patched context's allocation "
          "rate — the reason precise\n   context targeting matters)")

    print("\n" + "=" * 70)
    print("mysql-like engine: why pooled allocators see ~zero overhead")
    print("=" * 70)
    result = measure_throughput(MySqlServer(), "mysql", 2000, (2000,))
    print(f"steady-state overhead: {result.overhead_pct:.2f}%  "
          f"(paper: no observable overhead)")
    engine = HeapTherapy(MySqlServer())
    native = engine.run_native(2000)
    per_query = native.allocator.stats.total_allocations / 2000
    print(f"heap allocations per query: {per_query:.3f} — the buffer pool "
          f"absorbs the rest,\nso there is almost nothing for the "
          f"interposer to intercept.")


if __name__ == "__main__":
    main()
