"""Static encoding verification throughput on the SPEC-like suite.

A companion to the §VIII encoding-scheme evaluation: every scheme x
strategy combination over every Table III call graph is certified by
the value-set verifier (:mod:`repro.analysis.encverify`) — injectivity,
wrap-freedom and decoder completeness — and the cost of doing so is
measured in graphs per second.  The point of the experiment is that the
static proof is cheap enough to run at every deployment (and inside the
AdditiveCodec constructor), unlike the context-enumeration check it
replaced.
"""

from __future__ import annotations

import time

from repro.analysis import verify_all
from repro.ccencoding import SCHEMES, Strategy
from repro.workloads.spec.profiles import SPEC_PROFILES
from repro.workloads.spec.synth import SyntheticSpecProgram

from conftest import format_table, write_result

#: scheme x strategy combinations certified per graph.
COMBOS = len(SCHEMES) * len(list(Strategy))


def verify_profile(profile):
    """All-combo certification of one SPEC graph, with wall time."""
    program = SyntheticSpecProgram(profile)
    start = time.perf_counter()
    certificates = verify_all(program)
    elapsed = time.perf_counter() - start
    return program, certificates, elapsed


def test_encoding_verify_counts(results_dir, benchmark):
    measured = [verify_profile(profile) for profile in SPEC_PROFILES]

    benchmark.pedantic(verify_profile, args=(SPEC_PROFILES[0],),
                       rounds=3, iterations=1)

    rows = []
    total_elapsed = 0.0
    total_combos = 0
    for program, certificates, elapsed in measured:
        assert len(certificates) == COMBOS
        for certificate in certificates:
            assert certificate.certified, certificate.render()
            assert not certificate.collisions
        graph = program.graph
        sites = {c.strategy: c.instrumented_sites for c in certificates
                 if c.scheme == "pcc"}
        state = max(c.state_size for c in certificates)
        contexts = max(sum(t.context_count for t in c.targets)
                       for c in certificates)
        total_elapsed += elapsed
        total_combos += len(certificates)
        rows.append((
            program.name, len(graph.function_names), graph.site_count,
            f"{len(certificates)}/{COMBOS}",
            sites[Strategy.FCS.value], sites[Strategy.INCREMENTAL.value],
            contexts, state, f"{elapsed * 1e3:.1f}",
            f"{COMBOS / elapsed:.0f}"))

    rows.append(("total", "-", "-",
                 f"{total_combos}/{len(SPEC_PROFILES) * COMBOS}",
                 "-", "-", "-", "-", f"{total_elapsed * 1e3:.1f}",
                 f"{total_combos / total_elapsed:.0f}"))
    text = format_table(
        "Static encoding verification — SPEC-like suite, all "
        "scheme x strategy combinations",
        ["benchmark", "functions", "call sites", "combos certified",
         "sites (FCS)", "sites (incr)", "contexts", "state entries",
         "verify ms", "graphs/s"],
        rows,
        note=("Each combo is one value-set fixpoint over the "
              "instrumented call graph: per-target CCID injectivity, "
              "additive wrap-freedom and decoder completeness "
              "(closed-form range or derived enumeration budget).  "
              "'graphs/s' counts certified (graph, scheme, strategy) "
              "triples per second of verifier wall time; 'state "
              "entries' is the abstract-domain size (reachable values "
              "summed over functions)."))
    write_result(results_dir, "encoding_verify_counts", text)

    # Acceptance: every combination certifies, and the verifier is fast
    # enough to run at deployment time (well above 10 graphs/s even on
    # the largest profile).
    assert total_combos == len(SPEC_PROFILES) * COMBOS
    assert total_combos / total_elapsed > 10
