"""Table II — effectiveness on vulnerable programs.

Regenerates the paper's effectiveness table: for every CVE-style program
and the 23-case SAMATE suite, run the attack natively, generate patches
offline from a single attack input, and verify the defended re-run
defeats the attack while benign inputs keep working.
"""

from __future__ import annotations

from repro.core.pipeline import HeapTherapy
from repro.vulntypes import VulnType
from repro.workloads.vulnerable import all_samate_cases, table2_programs

from conftest import format_table, write_result


def run_program(program):
    """One full effectiveness cycle; returns the Table II row."""
    system = HeapTherapy(program)
    native = system.run_native(program.attack_input())
    attack_native = program.attack_succeeded(native.result)
    generation = system.generate_patches(program.attack_input())
    detected = VulnType.NONE
    for patch in generation.patches:
        detected |= patch.vuln
    defended = system.run_defended(generation.patches,
                                   program.attack_input())
    outcome = None if defended.blocked else defended.result
    defeated = not program.attack_succeeded(outcome)
    benign = system.run_defended(generation.patches,
                                 program.benign_input())
    benign_ok = (not benign.blocked) and program.benign_works(benign.result)
    return {
        "program": program.name,
        "vulnerability": program.vulnerability,
        "reference": program.reference,
        "attack_native": attack_native,
        "detected": detected.describe(),
        "patches": len(generation.patches),
        "defeated": defeated,
        "benign_ok": benign_ok,
        "how": "blocked (guard fault)" if defended.blocked else "neutralized",
    }


def test_table2_effectiveness(results_dir, benchmark):
    programs = table2_programs()
    samate = all_samate_cases()

    rows = [run_program(program) for program in programs]

    samate_rows = [run_program(case) for case in samate]
    samate_ok = sum(1 for row in samate_rows
                    if row["attack_native"] and row["defeated"]
                    and row["benign_ok"])

    # Benchmark the full pipeline on the flagship workload.
    benchmark.pedantic(run_program, args=(programs[0],), rounds=1,
                       iterations=1)

    table_rows = [
        (row["program"], row["vulnerability"], row["reference"],
         "yes" if row["attack_native"] else "NO",
         row["detected"], row["patches"],
         "yes" if row["defeated"] else "NO", row["how"],
         "yes" if row["benign_ok"] else "NO")
        for row in rows
    ]
    table_rows.append(("SAMATE Dataset", "Variety", "23 heap bugs",
                       "yes", "all three types", "-",
                       f"{samate_ok}/23", "-", "yes"))
    text = format_table(
        "Table II — effectiveness (paper: all programs patched & protected)",
        ["program", "vuln", "reference", "attack works natively",
         "detected type", "#patches", "attack defeated", "mechanism",
         "benign works"],
        table_rows,
        note=("Every row must read yes/yes/yes: the attack succeeds "
              "natively, the single-input offline replay yields patches "
              "of the right type, and the defended re-run defeats it "
              "without disturbing benign inputs."))
    write_result(results_dir, "table2_effectiveness", text)

    assert all(row["attack_native"] for row in rows)
    assert all(row["defeated"] for row in rows)
    assert all(row["benign_ok"] for row in rows)
    assert samate_ok == 23
