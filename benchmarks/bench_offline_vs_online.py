"""The paper's core premise — heavyweight offline, lightweight online.

HeapTherapy+'s architecture rests on a cost asymmetry the introduction
spells out: shadow-memory analysis costs tens-of-times slowdown
(Memcheck ≈ 22x, ASan 73%), so it must run *offline*, once per attack
input; the online defense must stay in single-digit percent.  This
benchmark measures both sides of that asymmetry on the same workloads —
the quantified justification for the whole offline/online split.

Asserted shape: shadow analysis ≥ 5x native (cycle model, and visibly
slower in wall-clock too); the online defense ≤ 15% over native on the
same programs.
"""

from __future__ import annotations

import time

from repro.allocator.libc import LibcAllocator
from repro.core.pipeline import HeapTherapy
from repro.defense.patch_table import PatchTable
from repro.program.cost import CycleMeter
from repro.program.process import Process
from repro.shadow.analyzer import ShadowAnalyzer
from repro.workloads.spec.profiles import profile_by_name
from repro.workloads.spec.synth import SyntheticSpecProgram

from conftest import BENCH_SCALE, format_table, write_result

BENCHMARKS = ("400.perlbench", "403.gcc", "471.omnetpp")
#: Shadow analysis interprets every access; keep its runs small.
SHADOW_SCALE = min(BENCH_SCALE, 0.05)


def measure(profile_name):
    """(native cycles, shadow cycles, defended cycles, wall times)."""
    program = SyntheticSpecProgram(profile_by_name(profile_name),
                                   scale=SHADOW_SCALE)
    system = HeapTherapy(program)

    start = time.perf_counter()
    native = system.run_native()
    native_wall = time.perf_counter() - start
    native_cycles = native.meter.total

    meter = CycleMeter()
    analyzer = ShadowAnalyzer(LibcAllocator(), meter=meter)
    runtime = system.instrumented.runtime(meter)
    process = Process(program.graph, monitor=analyzer,
                      context_source=runtime, meter=meter,
                      record_allocations=False)
    start = time.perf_counter()
    process.run(program)
    shadow_wall = time.perf_counter() - start
    shadow_cycles = meter.total

    start = time.perf_counter()
    defended = system.run_defended(PatchTable.empty())
    defended_wall = time.perf_counter() - start
    defended_cycles = defended.meter.total

    return {
        "native": (native_cycles, native_wall),
        "shadow": (shadow_cycles, shadow_wall),
        "defended": (defended_cycles, defended_wall),
    }


def test_offline_heavy_online_light(results_dir, benchmark):
    measured = {name: measure(name) for name in BENCHMARKS}

    benchmark.pedantic(measure, args=(BENCHMARKS[0],), rounds=1,
                       iterations=1)

    rows = []
    shadow_ratios = []
    online_overheads = []
    for name in BENCHMARKS:
        data = measured[name]
        native_cycles, native_wall = data["native"]
        shadow_cycles, shadow_wall = data["shadow"]
        defended_cycles, _ = data["defended"]
        shadow_ratio = shadow_cycles / native_cycles
        online = (defended_cycles / native_cycles - 1) * 100
        shadow_ratios.append(shadow_ratio)
        online_overheads.append(online)
        rows.append((name, f"{shadow_ratio:.1f}x",
                     f"{shadow_wall / max(native_wall, 1e-9):.1f}x",
                     f"{online:.2f}%"))
    text = format_table(
        "Offline vs online cost asymmetry (the architecture's premise)",
        ["benchmark", "shadow analysis (cycles)",
         "shadow analysis (wall)", "online defense overhead"],
        rows,
        note=("Paper context: Memcheck ≈ 22x, AddressSanitizer +73%, "
              "HeapTherapy+ online ≈ 5%.  The asymmetry is why attack "
              "analysis runs offline once and only the configuration "
              "crosses to production."))
    write_result(results_dir, "offline_vs_online", text)

    assert min(shadow_ratios) >= 5.0, shadow_ratios
    assert max(online_overheads) < 15.0, online_overheads
    # The gap itself: offline is at least an order of magnitude beyond
    # the online defense's *overhead* on every benchmark.
    for ratio, online in zip(shadow_ratios, online_overheads):
        assert (ratio - 1) * 100 > 10 * max(online, 0.1)
