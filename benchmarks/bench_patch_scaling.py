"""Extension — how overhead scales with patch count and context heat.

Figure 8 samples three patch counts (0/1/5).  This extension sweeps the
count further and separates the *number of patches* from the *heat of
the patched contexts* — the two factors that together determine
enforcement cost (cost ≈ Σ patched-context allocation rate × per-buffer
defense cost).  The paper's implicit claims, asserted here:

* overhead grows roughly linearly in the number of same-heat patches;
* a single hot-context patch can cost more than many cold ones — patch
  count alone is a poor predictor, which is exactly why HeapTherapy+'s
  per-context precision matters.
"""

from __future__ import annotations

from repro.core.pipeline import HeapTherapy
from repro.core.profiling import AllocationProfile
from repro.defense.patch_table import PatchTable
from repro.workloads.spec.profiles import profile_by_name
from repro.workloads.spec.synth import SyntheticSpecProgram

from conftest import BENCH_SCALE, format_table, write_result

COUNTS = (0, 1, 2, 5, 10, 20)


def build_profile(system):
    native = system.run_native()
    profile = AllocationProfile()
    profile.ingest(native.process)
    return native, profile


def test_patch_count_sweep(results_dir, benchmark):
    program = SyntheticSpecProgram(profile_by_name("400.perlbench"),
                                   scale=min(BENCH_SCALE, 0.2))
    system = HeapTherapy(program)
    native, profile = build_profile(system)
    base = native.meter.total

    def overhead_for(count):
        patches = profile.hypothesize_patches(which="median", count=count)
        run = system.run_defended(PatchTable(patches))
        assert run.completed
        return (run.meter.total / base - 1) * 100

    overheads = {count: overhead_for(count) for count in COUNTS}
    benchmark.pedantic(overhead_for, args=(1,), rounds=1, iterations=1)

    rows = [(count, f"{overheads[count]:.2f}") for count in COUNTS]
    increments = [overheads[b] - overheads[a]
                  for a, b in zip(COUNTS, COUNTS[1:])]
    text = format_table(
        "Extension — overhead vs number of median-heat patches "
        "(400.perlbench-like)",
        ["patches installed", "overhead %"],
        rows,
        note=("Figure 8 samples 0/1/5; the sweep shows the growth stays "
              "roughly proportional to the patched contexts' combined "
              "allocation rate."))
    write_result(results_dir, "ext_patch_count_sweep", text)

    # Monotone growth.
    values = [overheads[count] for count in COUNTS]
    assert values == sorted(values)
    # Roughly linear: the largest per-patch increment must not dwarf the
    # average one (no superlinear blow-up).
    per_patch = [(overheads[b] - overheads[a]) / (b - a)
                 for a, b in zip(COUNTS, COUNTS[1:])]
    assert max(per_patch) <= 6 * (sum(per_patch) / len(per_patch)) + 0.05


def test_heat_matters_more_than_count(results_dir):
    program = SyntheticSpecProgram(profile_by_name("471.omnetpp"),
                                   scale=min(BENCH_SCALE, 0.2))
    system = HeapTherapy(program)
    native, profile = build_profile(system)
    base = native.meter.total

    def overhead(patches):
        run = system.run_defended(PatchTable(patches))
        return (run.meter.total / base - 1) * 100

    one_hot = overhead(profile.hypothesize_patches(which="hottest",
                                                   count=1))
    ten_cold = overhead(profile.hypothesize_patches(which="coldest",
                                                    count=10))
    baseline = overhead([])

    rows = [
        ("no patches", f"{baseline:.2f}"),
        ("1 hottest-context patch", f"{one_hot:.2f}"),
        ("10 coldest-context patches", f"{ten_cold:.2f}"),
    ]
    text = format_table(
        "Extension — context heat vs patch count (471.omnetpp-like)",
        ["configuration", "overhead %"],
        rows,
        note="One hot patch out-costs ten cold ones: enforcement cost "
             "follows the patched contexts' allocation rate.")
    write_result(results_dir, "ext_heat_vs_count", text)

    assert one_hot > ten_cold
    assert ten_cold >= baseline
