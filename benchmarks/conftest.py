"""Shared infrastructure for the reproduction benchmarks.

Every benchmark regenerates one table or figure from the paper's
evaluation (see DESIGN.md §3 for the index), writes the reproduced table
to ``benchmarks/results/<experiment>.txt``, asserts the paper's *shape*
claims, and times its hot path with pytest-benchmark.

Scale: benchmarks honour ``REPRO_BENCH_SCALE`` (default 0.2) — the factor
applied on top of the profiles' 1:10,000 allocation-count scaling.  Use
``REPRO_BENCH_SCALE=1.0`` for the full-scale paper-vs-measured run that
EXPERIMENTS.md reports.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Iterable, List, Sequence

import pytest

RESULTS_DIR = Path(__file__).parent / "results"

#: Workload scale multiplier for benchmark runs.
BENCH_SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "0.2"))


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


def format_table(title: str, headers: Sequence[str],
                 rows: Iterable[Sequence[object]],
                 note: str = "") -> str:
    """Fixed-width table rendering for the results files."""
    rows = [[str(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = [title, "=" * len(title), ""]
    lines.append("  ".join(h.ljust(widths[i])
                           for i, h in enumerate(headers)))
    lines.append("  ".join("-" * widths[i] for i in range(len(headers))))
    for row in rows:
        lines.append("  ".join(cell.ljust(widths[i])
                               for i, cell in enumerate(row)))
    if note:
        lines += ["", note]
    lines.append("")
    return "\n".join(lines)


def write_result(results_dir: Path, name: str, text: str) -> None:
    """Persist one experiment's reproduced table."""
    path = results_dir / f"{name}.txt"
    path.write_text(text, encoding="utf-8")
