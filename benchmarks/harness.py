#!/usr/bin/env python
"""Runnable wrapper for the perf-regression harness.

Equivalent to ``python -m repro bench``; exists so the harness can be
invoked directly from a checkout without installing the package::

    python benchmarks/harness.py --suite substrate --scale 0.2
    python benchmarks/harness.py --baseline BENCH_substrate.json

See :mod:`repro.bench.harness` for the suite definitions and the JSON
schema of the emitted ``BENCH_substrate.json`` / ``BENCH_services.json``.
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.bench.harness import main  # noqa: E402

if __name__ == "__main__":
    sys.exit(main())
