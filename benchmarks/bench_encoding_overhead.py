"""§VIII-B1 — execution-time overhead of the encoding strategies.

Paper numbers (SPEC CPU2006 INT average slowdown): FCS 2.4%, TCS 0.6%,
Slim 0.5%, Incremental 0.4% — "up to 6x of speed up" for the targeted
optimizations over full-call-site PCC.

The reproduction runs every SPEC-like workload under each strategy with
the deterministic cycle model and reports encoding cycles relative to the
baseline.  The shape claims asserted: the strict FCS > TCS >= Slim >=
Incremental ordering, and an FCS/Incremental ratio of at least 3x.
"""

from __future__ import annotations

from repro.allocator.libc import LibcAllocator
from repro.ccencoding import (
    SCHEMES,
    EncodingRuntime,
    InstrumentationPlan,
    Strategy,
    WalkedContextSource,
)
from repro.program.cost import CycleMeter
from repro.program.process import Process
from repro.workloads.spec.profiles import SPEC_PROFILES
from repro.workloads.spec.synth import SyntheticSpecProgram

from conftest import BENCH_SCALE, format_table, write_result


def encoding_overhead(program, strategy) -> float:
    """Encoding cycles as a fraction of baseline cycles, in percent."""
    plan = InstrumentationPlan.build(program.graph,
                                     program.graph.allocation_targets,
                                     strategy)
    meter = CycleMeter()
    runtime = EncodingRuntime(SCHEMES["pcc"].build(plan), meter)
    process = Process(program.graph, heap=LibcAllocator(),
                      context_source=runtime, meter=meter,
                      record_allocations=False)
    process.run(program)
    return meter.category("encoding") / meter.category("base") * 100


def walking_overhead(program) -> float:
    """Stack walking instead of encoding — the §II-B baseline."""
    meter = CycleMeter()
    walker = WalkedContextSource(meter)
    process = Process(program.graph, heap=LibcAllocator(),
                      context_source=walker, meter=meter,
                      record_allocations=False)
    process.run(program)
    return meter.category("encoding") / meter.category("base") * 100


def test_encoding_strategy_comparison(results_dir, benchmark):
    programs = [SyntheticSpecProgram(profile, scale=BENCH_SCALE)
                for profile in SPEC_PROFILES]

    per_strategy = {strategy: [] for strategy in Strategy}
    walk = []
    for program in programs:
        for strategy in Strategy:
            per_strategy[strategy].append(
                encoding_overhead(program, strategy))
        walk.append(walking_overhead(program))

    averages = {strategy: sum(values) / len(values)
                for strategy, values in per_strategy.items()}
    walk_avg = sum(walk) / len(walk)

    # Wall-clock benchmark of the hottest configuration.
    benchmark.pedantic(encoding_overhead,
                       args=(programs[0], Strategy.INCREMENTAL),
                       rounds=1, iterations=1)

    rows = []
    for index, program in enumerate(programs):
        rows.append((program.name,
                     *(f"{per_strategy[s][index]:.3f}" for s in Strategy),
                     f"{walk[index]:.2f}"))
    rows.append(("AVERAGE",
                 *(f"{averages[s]:.3f}" for s in Strategy),
                 f"{walk_avg:.2f}"))
    ratio = averages[Strategy.FCS] / max(averages[Strategy.INCREMENTAL],
                                         1e-9)
    text = format_table(
        "§VIII-B1 — encoding execution-time overhead (%, cycle model)",
        ["benchmark", "FCS", "TCS", "Slim", "Incremental",
         "stack walking"],
        rows,
        note=(f"Paper: FCS 2.4 / TCS 0.6 / Slim 0.5 / Incremental 0.4 "
              f"(≈6x).  Measured FCS/Incremental ratio: {ratio:.1f}x.  "
              f"Stack walking is the no-encoding baseline the paper "
              f"argues against."))
    write_result(results_dir, "sec8b1_encoding_overhead", text)

    assert averages[Strategy.FCS] > averages[Strategy.TCS]
    assert averages[Strategy.TCS] >= averages[Strategy.SLIM]
    assert averages[Strategy.SLIM] >= averages[Strategy.INCREMENTAL]
    assert ratio >= 3.0, f"expected >=3x FCS/Incremental, got {ratio:.1f}x"
    assert walk_avg > averages[Strategy.FCS], \
        "stack walking must cost more than any encoding"
