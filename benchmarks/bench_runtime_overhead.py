"""Figure 8 — execution-time overhead of the full system.

Paper bars (SPEC CPU2006 INT average): interposition only 1.9%; zero
patches 4.3%; one patch 4.7%; five patches 5.2%; 400.perlbench is the
outlier (most intensive heap allocation).

The reproduction runs every SPEC-like workload natively and under the
defense with 0 / 1 / 5 median-frequency hypothesized overflow patches
(the paper's §VIII-B2 methodology) and reports total-cycle overheads plus
the category decomposition.
"""

from __future__ import annotations

from repro.core.pipeline import HeapTherapy
from repro.defense.patch_table import PatchTable
from repro.workloads.services.harness import median_frequency_patches
from repro.workloads.spec.profiles import SPEC_PROFILES
from repro.workloads.spec.synth import SyntheticSpecProgram

from conftest import BENCH_SCALE, format_table, write_result

CONFIGS = ("interpose-only", "0 patches", "1 patch", "5 patches")


def measure(profile):
    """All four Figure 8 bars for one benchmark, in percent."""
    program = SyntheticSpecProgram(profile, scale=BENCH_SCALE)
    system = HeapTherapy(program)
    native = system.run_native()
    base = native.meter.total

    p0 = system.run_defended(PatchTable.empty())
    p1 = system.run_defended(
        PatchTable(median_frequency_patches(system, count=1)))
    p5 = system.run_defended(
        PatchTable(median_frequency_patches(system, count=5)))

    interpose_only = (p0.meter.category("base")
                      + p0.meter.category("interpose")) / base - 1
    return {
        "interpose-only": interpose_only * 100,
        "0 patches": (p0.meter.total / base - 1) * 100,
        "1 patch": (p1.meter.total / base - 1) * 100,
        "5 patches": (p5.meter.total / base - 1) * 100,
        "_decomposition": p5.meter.snapshot(),
    }


def test_figure8_runtime_overhead(results_dir, benchmark):
    measured = {profile.name: measure(profile)
                for profile in SPEC_PROFILES}

    benchmark.pedantic(measure, args=(SPEC_PROFILES[3],),
                       rounds=1, iterations=1)

    rows = []
    for profile in SPEC_PROFILES:
        values = measured[profile.name]
        rows.append((profile.name,
                     *(f"{values[config]:.2f}" for config in CONFIGS)))
    averages = [sum(measured[p.name][config] for p in SPEC_PROFILES)
                / len(SPEC_PROFILES) for config in CONFIGS]
    rows.append(("AVERAGE", *(f"{a:.2f}" for a in averages)))
    text = format_table(
        "Figure 8 — execution-time overhead (%, cycle model)",
        ["benchmark", *CONFIGS],
        rows,
        note=("Paper averages: interposition 1.9 / no patch 4.3 / one "
              "patch 4.7 / five patches 5.2; perlbench is the outlier. "
              "Patched contexts are the median-frequency allocation-time "
              "CCIDs of a profiling run, treated as overflow patches "
              "(the most expensive type)."))
    write_result(results_dir, "figure8_runtime_overhead", text)

    interpose_avg, p0_avg, p1_avg, p5_avg = averages
    # Shape claims: monotone growth, small per-patch increments.
    assert 0 < interpose_avg < p0_avg < p1_avg < p5_avg
    assert p1_avg - p0_avg < 2.0, "one patch must cost little on average"
    assert p5_avg < 4 * p0_avg + 5.0, "five patches stay moderate"
    # perlbench is among the most affected benchmarks (the outlier).
    p0_by_bench = {p.name: measured[p.name]["0 patches"]
                   for p in SPEC_PROFILES}
    ranked = sorted(p0_by_bench, key=p0_by_bench.get, reverse=True)
    assert "400.perlbench" in ranked[:2]
    # Allocation-light benchmarks show near-zero overhead.
    for light in ("401.bzip2", "429.mcf", "458.sjeng"):
        assert p0_by_bench[light] < 1.0


def test_decomposition_matches_categories(results_dir):
    """The Figure 8 stacked decomposition: categories are additive and
    the defense category only appears once patches exist."""
    profile = SPEC_PROFILES[0]
    program = SyntheticSpecProgram(profile, scale=min(BENCH_SCALE, 0.1))
    system = HeapTherapy(program)
    p0 = system.run_defended(PatchTable.empty())
    assert p0.meter.category("defense") == 0
    p1 = system.run_defended(
        PatchTable(median_frequency_patches(system, count=1)))
    assert p1.meter.category("defense") > 0
    for run in (p0, p1):
        assert run.meter.total == sum(run.meter.snapshot().values())
