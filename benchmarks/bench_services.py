"""§VIII-B2 — throughput overhead on service programs.

Paper: Nginx 1.2 under Apache Benchmark at 20–200 concurrent requests
loses 4.2% throughput on average; MySQL 5.5.9 under its stress test shows
no observable overhead; memory overhead negligible for both.
"""

from __future__ import annotations

from repro.workloads.services import (
    MySqlServer,
    NginxServer,
    measure_throughput,
)

from conftest import BENCH_SCALE, format_table, write_result

REQUESTS = max(int(600 * BENCH_SCALE), 100)
QUERIES = max(int(6000 * BENCH_SCALE), 1000)
CONCURRENCIES = (20, 60, 100, 150, 200)


def test_services_throughput(results_dir, benchmark):
    nginx_results = [
        measure_throughput(NginxServer(), f"nginx c={concurrency}",
                           REQUESTS, (REQUESTS, concurrency))
        for concurrency in CONCURRENCIES
    ]
    mysql_result = measure_throughput(MySqlServer(), "mysql", QUERIES,
                                      (QUERIES,))

    benchmark.pedantic(
        measure_throughput,
        args=(NginxServer(), "nginx bench", REQUESTS, (REQUESTS, 20)),
        rounds=1, iterations=1)

    rows = []
    for concurrency, result in zip(CONCURRENCIES, nginx_results):
        rows.append((f"nginx (c={concurrency})",
                     f"{result.native_throughput:.2f}",
                     f"{result.defended_throughput:.2f}",
                     f"{result.overhead_pct:.2f}"))
    nginx_avg = (sum(r.overhead_pct for r in nginx_results)
                 / len(nginx_results))
    rows.append(("nginx AVERAGE", "", "", f"{nginx_avg:.2f}"))
    rows.append(("mysql (stress mix)",
                 f"{mysql_result.native_throughput:.2f}",
                 f"{mysql_result.defended_throughput:.2f}",
                 f"{mysql_result.overhead_pct:.2f}"))
    text = format_table(
        "§VIII-B2 — service throughput overhead",
        ["service", "native (req/Mcycle)", "defended (req/Mcycle)",
         "overhead %"],
        rows,
        note=("Paper: Nginx 4.2% average over 20-200 concurrency; MySQL "
              "no observable overhead.  Throughput is work units per "
              "million simulated cycles."))
    write_result(results_dir, "sec8b2_services", text)

    assert 0 < nginx_avg < 10
    assert mysql_result.overhead_pct < 1.5
    assert mysql_result.overhead_pct < nginx_avg


def test_service_memory_overhead_negligible(results_dir):
    """Paper: "The memory overhead in both cases was negligible"."""
    from repro.core.pipeline import HeapTherapy
    from repro.defense.patch_table import PatchTable

    for program, args in ((NginxServer(), (REQUESTS, 20)),
                          (MySqlServer(), (QUERIES,))):
        system = HeapTherapy(program)
        native = system.run_native(*args)
        defended = system.run_defended(PatchTable.empty(), *args)
        native_pages = native.allocator.memory.peak_resident_pages
        defended_pages = defended.allocator.memory.peak_resident_pages
        overhead = (defended_pages / native_pages - 1) * 100
        assert overhead < 10, f"{program.name}: {overhead:.1f}% RSS"
