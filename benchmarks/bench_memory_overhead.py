"""Figure 9 — memory (RSS) overhead of the defense.

Paper: average 4.3% RSS overhead on SPEC CPU2006, attributed to the
per-buffer metadata the system maintains; guard pages themselves do not
increase memory use because they are virtual pages.

The reproduction compares peak resident set size (the simulated VmRSS
high-water mark) between native and defended runs, and additionally
verifies the guard-page claim directly: a run with many guarded buffers
must not become proportionally more resident.
"""

from __future__ import annotations

from repro.core.pipeline import HeapTherapy
from repro.defense.patch_table import PatchTable
from repro.patch.model import HeapPatch
from repro.vulntypes import VulnType
from repro.workloads.services.harness import median_frequency_patches
from repro.workloads.spec.profiles import SPEC_PROFILES
from repro.workloads.spec.synth import SyntheticSpecProgram

from conftest import BENCH_SCALE, format_table, write_result


def measure(profile):
    """Peak RSS pages, native vs defended (no patches)."""
    program = SyntheticSpecProgram(profile, scale=BENCH_SCALE)
    system = HeapTherapy(program)
    native = system.run_native()
    defended = system.run_defended(PatchTable.empty())
    native_pages = native.allocator.memory.peak_resident_pages
    defended_pages = defended.allocator.memory.peak_resident_pages
    return native_pages, defended_pages


def test_figure9_memory_overhead(results_dir, benchmark):
    measured = {profile.name: measure(profile)
                for profile in SPEC_PROFILES}

    benchmark.pedantic(measure, args=(SPEC_PROFILES[3],),
                       rounds=1, iterations=1)

    rows = []
    overheads = []
    for profile in SPEC_PROFILES:
        native_pages, defended_pages = measured[profile.name]
        overhead = (defended_pages / native_pages - 1) * 100
        overheads.append(overhead)
        rows.append((profile.name, native_pages, defended_pages,
                     f"{overhead:.1f}"))
    average = sum(overheads) / len(overheads)
    rows.append(("AVERAGE", "", "", f"{average:.1f}"))
    text = format_table(
        "Figure 9 — peak RSS overhead (%, simulated VmRSS pages)",
        ["benchmark", "native pages", "defended pages", "overhead %"],
        rows,
        note=("Paper: 4.3% average, due to per-buffer metadata.  Guard "
              "pages are virtual and never resident (verified by the "
              "companion test)."))
    write_result(results_dir, "figure9_memory_overhead", text)

    assert 0 <= average < 15, f"average RSS overhead {average:.1f}%"
    # Every benchmark: defended uses about as much or a little more,
    # never wildly more.  (A page or two of negative jitter is possible:
    # the metadata words shift chunk layout, which can change which
    # pages the peak happens to touch.)
    for profile in SPEC_PROFILES:
        native_pages, defended_pages = measured[profile.name]
        assert defended_pages >= native_pages - 3
        assert defended_pages <= native_pages * 1.4 + 4


def test_guard_pages_are_memory_free(results_dir):
    """The paper's virtual-page claim, with one honest nuance.

    Patch the hottest context with OVERFLOW so hundreds of guard pages
    are installed.  The padding and the protected body of each guard
    page never become resident; the one page holding the user-size word
    (Figure 6 stores it in the guard page's first word) does, but only
    while the buffer is live — so extra residency is bounded by the live
    set, not by the number of guarded allocations, and address-space
    consumption vastly exceeds residency growth.
    """
    profile = SPEC_PROFILES[0]
    program = SyntheticSpecProgram(profile, scale=min(BENCH_SCALE, 0.1))
    system = HeapTherapy(program)
    profiling = system.run_native()
    (fun, ccid), count = profiling.process.alloc_profile.most_common(1)[0]
    assert count > 50, "need a hot context for this experiment"

    guarded = system.run_defended(
        PatchTable([HeapPatch(fun, ccid, VulnType.OVERFLOW)]))
    unguarded = system.run_defended(
        PatchTable([HeapPatch(fun, ccid, VulnType.USE_AFTER_FREE)]),
    )
    guarded_pages = guarded.allocator.memory.peak_resident_pages
    unguarded_pages = unguarded.allocator.memory.peak_resident_pages
    extra_resident = guarded_pages - unguarded_pages

    mprotects = guarded.allocator.memory.mprotect_count
    assert mprotects > count, "every patched allocation sealed a guard"
    # Far fewer extra resident pages than guarded allocations: guards are
    # virtual; only live size-words pin pages.
    assert extra_resident < count * 0.6
    assert extra_resident <= guarded.allocator.stats.peak_buffers + 64
