"""Ablations — quantifying the design choices behind the system.

Not a paper table; these benches isolate the mechanisms the paper's
design arguments rest on:

* **A. defense cost by vulnerability type** — guard pages (two
  ``mprotect`` calls per buffer lifetime) dominate; zero-fill scales
  with size; deferred free is nearly free.  This is why Figure 8 treats
  overflow patches as the expensive case.
* **B. quarantine quota vs. reuse deferral** — the Section VI entropy
  argument: for a fixed quota, quarantining only patched buffers defers
  their reuse far longer than quarantining everything.
* **C. stack walking vs. encoding across allocation intensity** — the
  §II-B motivation: walking costs grow with stack depth × allocation
  rate; the encoding register read is flat.
* **D. encoding scheme equivalence** — PCC, PCCE and DeltaPath differ in
  decodability, not in online cost: same instrumented sites, same
  update count.
"""

from __future__ import annotations

from repro.allocator.libc import LibcAllocator
from repro.ccencoding import (
    SCHEMES,
    EncodingRuntime,
    InstrumentationPlan,
    Strategy,
    WalkedContextSource,
)
from repro.common.fifo import FreedBlock, FreedBlockQueue
from repro.core.pipeline import HeapTherapy
from repro.defense.patch_table import PatchTable
from repro.patch.model import HeapPatch
from repro.program.callgraph import CallGraph
from repro.program.cost import CycleMeter
from repro.program.process import Process
from repro.program.program import Program
from repro.vulntypes import VulnType
from repro.workloads.spec.profiles import profile_by_name
from repro.workloads.spec.synth import SyntheticSpecProgram

from conftest import BENCH_SCALE, format_table, write_result


def test_defense_cost_by_vuln_type(results_dir, benchmark):
    """Ablation A: per-type enforcement cost on the same workload."""
    program = SyntheticSpecProgram(profile_by_name("400.perlbench"),
                                   scale=min(BENCH_SCALE, 0.1))
    system = HeapTherapy(program)
    profiling = system.run_native()
    base = profiling.meter.total
    (fun, ccid), count = profiling.process.alloc_profile.most_common(1)[0]

    rows = []
    costs = {}
    for vuln in (VulnType.OVERFLOW, VulnType.USE_AFTER_FREE,
                 VulnType.UNINIT_READ):
        run = system.run_defended(PatchTable([HeapPatch(fun, ccid, vuln)]))
        defense = run.meter.category("defense")
        costs[vuln] = defense
        rows.append((vuln.describe(), count,
                     f"{defense:,.0f}", f"{defense / count:,.1f}",
                     f"{defense / base * 100:.2f}"))
    benchmark.pedantic(system.run_defended,
                       args=(PatchTable([HeapPatch(
                           fun, ccid, VulnType.USE_AFTER_FREE)]),),
                       rounds=1, iterations=1)
    text = format_table(
        "Ablation A — defense enforcement cost by patch type "
        "(hottest context patched)",
        ["patch type", "enhanced allocs", "defense cycles",
         "cycles/alloc", "% of baseline"],
        rows,
        note="Guard pages (2 mprotect/lifetime) dominate; deferred free "
             "is a queue push; zero-fill scales with buffer size.")
    write_result(results_dir, "ablation_defense_cost_by_type", text)

    assert costs[VulnType.OVERFLOW] > 10 * costs[VulnType.USE_AFTER_FREE]
    assert costs[VulnType.OVERFLOW] > costs[VulnType.UNINIT_READ]


def test_quarantine_selectivity_extends_deferral(results_dir, benchmark):
    """Ablation B: same quota, fewer entrants, longer quarantine."""
    quota = 64 * 1024
    block = 1024
    frees = 2000

    def deferral(selectivity):
        """Average frees a quarantined block survives before eviction."""
        queue = FreedBlockQueue(quota)
        lifetimes = []
        for i in range(frees):
            if i % selectivity:
                continue
            for evicted in queue.push(FreedBlock(i, block)):
                lifetimes.append(i - evicted.address)
        return (sum(lifetimes) / len(lifetimes)) if lifetimes else float("inf")

    rows = []
    results = {}
    for selectivity in (1, 2, 5, 10, 25):
        window = deferral(selectivity)
        results[selectivity] = window
        label = ("every buffer (no patch filter)" if selectivity == 1
                 else f"1 in {selectivity} buffers patched")
        rows.append((label,
                     "∞ (never evicted)" if window == float("inf")
                     else f"{window:,.0f} frees"))
    benchmark.pedantic(deferral, args=(5,), rounds=1, iterations=1)
    text = format_table(
        "Ablation B — deferred-free window vs. quarantine selectivity "
        f"(quota {quota // 1024} KiB, {block} B blocks)",
        ["who is quarantined", "avg deferral before reuse"],
        rows,
        note="The Section VI argument: filtering the queue to patched "
             "contexts multiplies how long each stays quarantined, "
             "raising the attacker's reuse-uncertainty entropy.")
    write_result(results_dir, "ablation_quarantine_selectivity", text)

    assert results[2] >= 2 * results[1] * 0.9
    assert results[10] >= 9 * results[1]


class DeepAllocator(Program):
    """Allocates at depth D, n times — the walking-vs-encoding worst case."""

    name = "deep-allocator"

    def __init__(self, depth, count):
        super().__init__()
        self.depth = depth
        self.count = count

    def build_graph(self):
        graph = CallGraph()
        parent = "main"
        for level in range(self.depth):
            child = f"f{level}"
            graph.add_call_site(parent, child)
            parent = child
        graph.add_call_site(parent, "malloc")
        graph.add_call_site("main", "free")
        return graph

    def main(self, p):
        for _ in range(self.count):
            address = p.call("f0", self._descend, 0)
            p.compute(400)
            p.free(address)

    def _descend(self, p, level):
        if level + 1 < self.depth:
            return p.call(f"f{level + 1}", self._descend, level + 1)
        return p.malloc(64)


def test_walking_vs_encoding_by_depth(results_dir, benchmark):
    """Ablation C: context retrieval cost as the call stack deepens.

    Three retrieval mechanisms on a depth-D allocation chain:

    * stack walking — O(depth) work on *every* allocation;
    * full PCC (FCS) — O(1) readout, but an update at each of the D
      sites on the way down (≈10x cheaper than walking here);
    * targeted PCC (Incremental) — the chain has no branching, so no
      site needs instrumentation at all: the paper's optimization taken
      to its logical extreme.
    """
    count = 300

    def encoding_cost(program, strategy):
        plan = InstrumentationPlan.build(program.graph, ["malloc"],
                                         strategy)
        meter = CycleMeter()
        runtime = EncodingRuntime(SCHEMES["pcc"].build(plan), meter)
        Process(program.graph, heap=LibcAllocator(),
                context_source=runtime, meter=meter,
                record_allocations=False).run(program)
        return meter.category("encoding")

    rows = []
    walking_costs = {}
    fcs_costs = {}
    targeted_costs = {}
    for depth in (2, 8, 32):
        program = DeepAllocator(depth, count)
        fcs_costs[depth] = encoding_cost(program, Strategy.FCS)
        targeted_costs[depth] = encoding_cost(program,
                                              Strategy.INCREMENTAL)
        walk_meter = CycleMeter()
        walker = WalkedContextSource(walk_meter)
        Process(program.graph, heap=LibcAllocator(), context_source=walker,
                meter=walk_meter, record_allocations=False).run(program)
        walking_costs[depth] = walk_meter.category("encoding")
        rows.append((depth, f"{walking_costs[depth]:,.0f}",
                     f"{fcs_costs[depth]:,.0f}",
                     f"{targeted_costs[depth]:,.0f}"))
    benchmark.pedantic(encoding_cost,
                       args=(DeepAllocator(8, count), Strategy.FCS),
                       rounds=1, iterations=1)
    text = format_table(
        "Ablation C — context retrieval cost by stack depth "
        f"({count} allocations, cycles)",
        ["stack depth", "stack walking", "PCC (FCS)",
         "targeted PCC (Incremental)"],
        rows,
        note="Walking pays per frame per allocation; full PCC pays per "
             "call site executed; targeted PCC instruments nothing on a "
             "branch-free chain — one context, nothing to distinguish "
             "(§II-B, §IV).")
    write_result(results_dir, "ablation_walking_vs_encoding", text)

    for depth in (2, 8, 32):
        assert walking_costs[depth] > 5 * fcs_costs[depth]
        assert targeted_costs[depth] <= fcs_costs[depth]
    # Walking scales with depth; the targeted readout does not.
    assert walking_costs[32] > 8 * walking_costs[2]
    assert targeted_costs[32] == targeted_costs[2]


def test_scheme_online_cost_equivalence(results_dir):
    """Ablation D: scheme choice changes decodability, not online cost."""
    program = SyntheticSpecProgram(profile_by_name("456.hmmer"),
                                   scale=min(BENCH_SCALE, 0.1))
    plan = InstrumentationPlan.build(program.graph,
                                     program.graph.allocation_targets,
                                     Strategy.TCS)
    updates = {}
    cycles = {}
    for scheme_name in ("pcc", "pcce", "deltapath"):
        meter = CycleMeter()
        runtime = EncodingRuntime(SCHEMES[scheme_name].build(plan), meter)
        Process(program.graph, heap=LibcAllocator(),
                context_source=runtime, meter=meter,
                record_allocations=False).run(program)
        updates[scheme_name] = runtime.updates_executed
        cycles[scheme_name] = meter.category("encoding")
    assert len(set(updates.values())) == 1, \
        "all schemes execute identical update counts"
    assert len(set(cycles.values())) == 1, \
        "all schemes charge identical encoding cycles"
