"""Static analysis extensions: pruning counts and attack-input-free
patches.

Two experiments beyond the paper's evaluation:

1. **Instrumentation pruning** — the heap-reachability pre-pass
   (:mod:`repro.analysis.reachability`) applied on top of each targeting
   strategy, measured on the Table III SPEC call graphs.  The pruned
   selection must be a subset of the strategy's own (and hence at most
   the TCS count for TCS and below), so the Table III size-increase
   numbers can only improve.

2. **Static vs dynamic patch generation** — the
   :class:`~repro.analysis.staticpatch.StaticPatchGenerator` run on the
   Table II workloads with *no attack input*, its speculative patches
   deployed online, and the defended run checked against the same
   attack/benign criteria as the dynamic (replay-based) pipeline.  The
   paper's dynamic patches are the precision baseline the static column
   is compared against.
"""

from __future__ import annotations

from repro.analysis import StaticPatchGenerator, analyze_program
from repro.analysis.reachability import pruning_report
from repro.ccencoding import Strategy
from repro.ccencoding.targeting import select_sites
from repro.core.pipeline import HeapTherapy
from repro.workloads.spec.profiles import SPEC_PROFILES
from repro.workloads.spec.synth import SyntheticSpecProgram
from repro.workloads.vulnerable import all_samate_cases, table2_programs

from conftest import format_table, write_result

ORDER = (Strategy.FCS, Strategy.TCS, Strategy.SLIM, Strategy.INCREMENTAL)


# ---------------------------------------------------------------------------
# 1. Pruning pre-pass on the SPEC graphs (Table III companion).
# ---------------------------------------------------------------------------


def pruning_counts(profile):
    """Per-strategy (unpruned, pruned) site counts for one SPEC graph."""
    program = SyntheticSpecProgram(profile)
    graph = program.graph
    targets = graph.allocation_targets
    counts = {}
    for strategy in ORDER:
        unpruned = select_sites(graph, targets, strategy)
        pruned = select_sites(graph, targets, strategy, prune=True)
        assert pruned <= unpruned
        counts[strategy] = (len(unpruned), len(pruned))
    return counts


def test_static_pruning_site_counts(results_dir, benchmark):
    measured = {profile.name: pruning_counts(profile)
                for profile in SPEC_PROFILES}

    benchmark.pedantic(pruning_counts, args=(SPEC_PROFILES[0],),
                       rounds=1, iterations=1)

    rows = []
    for profile in SPEC_PROFILES:
        counts = measured[profile.name]
        tcs_count = counts[Strategy.TCS][0]
        cells = []
        for strategy in ORDER:
            unpruned, pruned = counts[strategy]
            cells.append(f"{unpruned} -> {pruned}")
            # The pre-pass never adds sites; at TCS and below the pruned
            # count is therefore bounded by the TCS selection.
            assert pruned <= unpruned
            if strategy is not Strategy.FCS:
                assert pruned <= tcs_count
        graph = SyntheticSpecProgram(profile).graph
        report = pruning_report(
            graph, graph.allocation_targets,
            select_sites(graph, graph.allocation_targets,
                         Strategy.INCREMENTAL))
        rows.append((profile.name, *cells,
                     report["dead_code_dropped"],
                     report["defaults_elided"]))

    text = format_table(
        "Static pre-pass — instrumented sites per strategy "
        "(unpruned -> pruned)",
        ["benchmark", "FCS", "TCS", "Slim", "Incremental",
         "dead dropped (incr)", "defaults elided (incr)"],
        rows,
        note=("The heap-reachability pre-pass drops dead-code sites and "
              "elides one default edge per caller (acyclic graphs only). "
              "Pruned selections are always subsets, so the Table III "
              "size numbers can only improve; the distinguishability "
              "property tests hold with pruning enabled."))
    write_result(results_dir, "static_pruning_site_counts", text)


# ---------------------------------------------------------------------------
# 2. Attack-input-free patches on the Table II workloads.
# ---------------------------------------------------------------------------


def static_defense_row(program):
    """Generate patches statically, deploy, and grade one workload."""
    system = HeapTherapy(program)
    static = StaticPatchGenerator(program,
                                  system.instrumented.codec).generate()
    dynamic = system.generate_patches(program.attack_input())
    dynamic_keys = {patch.key for patch in dynamic.patches}
    static_keys = {patch.key for patch in static.patches}

    defended = system.run_defended(static.patches, program.attack_input())
    outcome = None if defended.blocked else defended.result
    defeated = not program.attack_succeeded(outcome)
    benign = system.run_defended(static.patches, program.benign_input())
    benign_ok = (not benign.blocked) and program.benign_works(benign.result)
    return {
        "program": program.name,
        "findings": len(static.findings),
        "static_patches": len(static.patches),
        "dynamic_patches": len(dynamic.patches),
        "overlap": len(static_keys & dynamic_keys),
        "defeated": defeated,
        "benign_ok": benign_ok,
        "how": "blocked" if defended.blocked else "neutralized",
    }


def test_static_patches_defeat_attacks(results_dir, benchmark):
    programs = table2_programs()
    rows = [static_defense_row(program) for program in programs]

    samate_rows = [static_defense_row(case)
                   for case in all_samate_cases()]
    samate_ok = sum(1 for row in samate_rows
                    if row["defeated"] and row["benign_ok"])

    benchmark.pedantic(analyze_program, args=(programs[0],),
                       rounds=3, iterations=1)

    table_rows = [
        (row["program"], row["findings"], row["static_patches"],
         row["dynamic_patches"], row["overlap"],
         "yes" if row["defeated"] else "NO", row["how"],
         "yes" if row["benign_ok"] else "NO")
        for row in rows
    ]
    table_rows.append(("SAMATE Dataset (23 cases)", "-", "-", "-", "-",
                       f"{samate_ok}/23", "-", "yes"))
    text = format_table(
        "Static patch generation — no attack input replayed",
        ["program", "findings", "static patches", "dynamic patches",
         "overlap", "attack defeated", "mechanism", "benign works"],
        rows=table_rows,
        note=("Patches are derived by abstract interpretation of the "
              "program source and lowered to {FUN, CCID, T} via static "
              "context enumeration — the attack input is never "
              "executed.  'overlap' counts (FUN, CCID) keys shared with "
              "the replay-generated patch set; the static set "
              "over-approximates contexts but pins the same root-cause "
              "allocations."))
    write_result(results_dir, "static_patch_effectiveness", text)

    defeated = sum(1 for row in rows
                   if row["defeated"] and row["benign_ok"])
    # Acceptance: static candidates defeat >= 5 Table II workloads
    # without any attack-input replay (measured: all of them).
    assert defeated >= 5, [row["program"] for row in rows]
    assert all(row["defeated"] for row in rows)
    assert all(row["benign_ok"] for row in rows)
    assert all(row["overlap"] >= 1 for row in rows)
    assert samate_ok == 23
