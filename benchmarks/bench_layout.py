"""Static heap-layout analysis: adjacency precision and throughput.

Two experiments around :mod:`repro.analysis.layout`:

1. **Predicted vs observed adjacency** — the layout pass run over the
   Table II + SAMATE workloads (the numbers behind the EXPERIMENTS.md
   table) and cross-checked against ground-truth adjacency observed by
   the fuzz oracle on seed-generated programs: every dynamically
   observed overflow (source, victim) pair must be statically predicted
   with a sound minimal overflow length (lower bound), and the corpus
   false-positive rate is recorded.

2. **Throughput** — layout graphs analyzed per second over the builtin
   corpus, the pytest-benchmark companion to ``BENCH_layout.json``.
"""

from __future__ import annotations

from repro.analysis import analyze_layout
from repro.fuzz.adjacency import cross_check_range
from repro.workloads.vulnerable import workload_registry

from conftest import BENCH_SCALE, format_table, write_result

#: Fuzz corpus size for the soundness/precision cross-check (the
#: acceptance floor is 50 at full scale).
CROSS_CHECK_SEEDS = max(int(60 * BENCH_SCALE), 12)


def layout_row(name, program):
    """Analyze one workload and summarize its adjacency graph."""
    result = analyze_layout(program)
    forward = sum(1 for p in result.pairs if p.direction == "forward")
    backward = len(result.pairs) - forward
    min_l = (min(p.min_overflow_len for p in result.pairs)
             if result.pairs else "-")
    return (name, len(result.sites), forward, backward, min_l,
            len(result.plans))


def test_layout_adjacency_across_workloads(results_dir, benchmark):
    registry = workload_registry()
    programs = {name: factory() for name, factory in
                sorted(registry.items())}
    rows = [layout_row(name, program)
            for name, program in programs.items()]

    benchmark.pedantic(analyze_layout,
                       args=(programs["heartbleed"],),
                       rounds=3, iterations=1)

    text = format_table(
        "Static heap-layout adjacency — Table II + SAMATE workloads",
        ["workload", "sites", "fwd pairs", "bwd pairs", "min l",
         "plans"],
        rows,
        note=("Adjacent pairs are (overflow-source site, victim site) "
              "edges whose chunks can neighbour on the libc heap while "
              "both are live; 'min l' is the smallest predicted "
              "overflow length that reaches a victim chunk.  Every "
              "workload with a planted overflow/underflow must show at "
              "least one pair; pure UAF/double-free/uninit cases show "
              "zero."))
    write_result(results_dir, "layout_adjacency_workloads", text)

    # Overflow-family workloads must produce adjacency; others may not.
    with_pairs = {row[0] for row in rows if row[2] + row[3] > 0}
    assert "heartbleed" in with_pairs
    assert "tiff" in with_pairs or "tiff-4.0.8" in with_pairs
    overflow_named = [name for name in programs
                      if "overflow" in name or "underflow" in name]
    for name in overflow_named:
        assert name in with_pairs, f"{name}: no adjacency predicted"


def test_layout_soundness_vs_fuzz_oracle(results_dir, benchmark):
    checks, fp_rate = benchmark.pedantic(
        cross_check_range, args=(0, CROSS_CHECK_SEEDS),
        rounds=1, iterations=1)

    observed = [check for check in checks if check.observed is not None]
    unsound = [check for check in checks if not check.sound]
    matched = sum(1 for check in checks if check.matched)

    rows = [(check.seed, check.kind,
             check.observed.direction if check.observed else "-",
             check.predicted_pairs,
             "yes" if check.matched else
             ("-" if check.observed is None else "NO"))
            for check in checks[:20]]
    text = format_table(
        "Static-vs-dynamic adjacency cross-check (first 20 seeds)",
        ["seed", "kind", "observed dir", "predicted pairs", "matched"],
        rows,
        note=(f"Corpus: {len(checks)} seed-generated programs, "
              f"{len(observed)} with an observable overflow adjacency; "
              f"all observed pairs statically predicted with sound "
              f"minimal lengths ({matched} matches). "
              f"False-positive rate (predicted edges the concrete heap "
              f"did not realize): {fp_rate:.3f}."))
    write_result(results_dir, "layout_soundness_cross_check", text)

    assert not unsound, [check.failures for check in unsound]
    assert observed, "corpus produced no observable adjacency"
    assert matched == len(observed)
    # Precision: co-liveness over-approximates, but the graph must not
    # degenerate to all-pairs (decoys disjoint from victims by size
    # keep some selectivity).
    assert fp_rate < 0.9
