"""Table III — binary size increase of each encoding strategy.

Paper averages: FCS 12%, TCS 6%, Slim 4.5%, Incremental 4.4%, with
per-benchmark structure (bzip2/sjeng collapse under TCS; astar collapses
under Slim; hmmer halves again under Incremental).

The model: each instrumented call site inserts a fixed number of bytes,
each instrumented function's prologue a few more (instrumentation.py).
The base binary size is anchored so the FCS column matches Table III (a
free parameter of the simulation — see profiles.py); the TCS / Slim /
Incremental columns are then *measured* from the generated call graphs.
"""

from __future__ import annotations

from repro.ccencoding import InstrumentationPlan, Strategy
from repro.workloads.spec.profiles import SPEC_PROFILES
from repro.workloads.spec.synth import SyntheticSpecProgram

from conftest import format_table, write_result

#: Table III, for the side-by-side note in the results file.
PAPER_TABLE3 = {
    "400.perlbench": (19.6, 16.2, 15.9, 15.9),
    "401.bzip2": (8.8, 0.12, 0.12, 0.12),
    "403.gcc": (18.6, 14.7, 13.6, 13.6),
    "429.mcf": (0.53, 0.53, 0.53, 0.53),
    "445.gobmk": (4.8, 3.2, 2.5, 2.5),
    "456.hmmer": (18.9, 5.9, 2.4, 1.2),
    "458.sjeng": (10.6, 0.08, 0.08, 0.08),
    "462.libquantum": (15.0, 7.7, 7.7, 7.7),
    "464.h264ref": (8.3, 3.6, 1.8, 1.8),
    "471.omnetpp": (15.8, 7.2, 6.7, 6.7),
    "473.astar": (7.0, 7.0, 0.2, 0.2),
    "483.xalancbmk": (14.5, 4.1, 3.8, 3.8),
}

ORDER = (Strategy.FCS, Strategy.TCS, Strategy.SLIM, Strategy.INCREMENTAL)


def size_increases(profile):
    """Percent size increase per strategy for one benchmark graph."""
    program = SyntheticSpecProgram(profile)
    graph = program.graph
    targets = graph.allocation_targets
    plans = {strategy: InstrumentationPlan.build(graph, targets, strategy)
             for strategy in ORDER}
    base = profile.base_binary_bytes(plans[Strategy.FCS].inserted_bytes)
    return {strategy: plans[strategy].size_increase(base) * 100
            for strategy in ORDER}


def test_table3_size_increase(results_dir, benchmark):
    measured = {profile.name: size_increases(profile)
                for profile in SPEC_PROFILES}

    benchmark.pedantic(size_increases, args=(SPEC_PROFILES[0],),
                       rounds=1, iterations=1)

    rows = []
    for profile in SPEC_PROFILES:
        values = measured[profile.name]
        paper = PAPER_TABLE3[profile.name]
        rows.append((profile.name,
                     *(f"{values[s]:.2f}" for s in ORDER),
                     " / ".join(f"{p:g}" for p in paper)))
    avgs = [sum(measured[p.name][s] for p in SPEC_PROFILES)
            / len(SPEC_PROFILES) for s in ORDER]
    rows.append(("AVERAGE", *(f"{a:.2f}" for a in avgs),
                 "12 / 6 / 4.5 / 4.4"))
    text = format_table(
        "Table III — binary size increase per strategy (%)",
        ["benchmark", "FCS", "TCS", "Slim", "Incremental",
         "paper (FCS/TCS/Slim/Incr)"],
        rows,
        note=("FCS is anchored per benchmark (base binary size is a free "
              "parameter); the other columns are measured from the "
              "generated call graphs."))
    write_result(results_dir, "table3_size_increase", text)

    # Shape claims.
    fcs_avg, tcs_avg, slim_avg, incr_avg = avgs
    assert fcs_avg > tcs_avg > slim_avg >= incr_avg
    # Per-benchmark structure mirrors the paper:
    assert measured["401.bzip2"][Strategy.TCS] < 1.0        # ≈0 under TCS
    assert measured["458.sjeng"][Strategy.TCS] < 1.0
    astar = measured["473.astar"]                           # Slim collapse
    assert astar[Strategy.SLIM] < astar[Strategy.TCS] * 0.6
    hmmer = measured["456.hmmer"]
    assert hmmer[Strategy.INCREMENTAL] < hmmer[Strategy.SLIM] < \
        hmmer[Strategy.TCS]                                  # double drop
    for profile in SPEC_PROFILES:
        values = measured[profile.name]
        assert values[Strategy.FCS] >= values[Strategy.TCS] >= \
            values[Strategy.SLIM] >= values[Strategy.INCREMENTAL]
