"""Table IV — heap allocation statistics of the SPEC-like suite.

The profiles embed the paper's exact per-benchmark malloc/calloc/realloc
counts; the synthetic programs replay them scaled 1:10,000 (tiny counts
verbatim).  This benchmark runs each program natively and reports the
*measured* allocator statistics next to the paper's original counts,
asserting the scaled counts and the relative ordering of allocation
intensity are preserved.
"""

from __future__ import annotations

from repro.allocator.libc import LibcAllocator
from repro.program.process import Process
from repro.workloads.spec.profiles import SPEC_PROFILES, scaled
from repro.workloads.spec.synth import SyntheticSpecProgram

from conftest import format_table, write_result


def measure(profile):
    """Run one benchmark natively; return its allocator stats."""
    program = SyntheticSpecProgram(profile, scale=1.0)
    allocator = LibcAllocator()
    process = Process(program.graph, heap=allocator,
                      record_allocations=False)
    process.run(program)
    return allocator.stats


def test_table4_alloc_stats(results_dir, benchmark):
    stats = {}
    for profile in SPEC_PROFILES:
        stats[profile.name] = measure(profile)

    benchmark.pedantic(measure, args=(SPEC_PROFILES[3],),  # mcf: tiny
                       rounds=1, iterations=1)

    rows = []
    for profile in SPEC_PROFILES:
        s = stats[profile.name]
        rows.append((
            profile.name,
            f"{s.malloc_calls:,}", f"{s.calloc_calls:,}",
            f"{s.realloc_calls:,}",
            f"{profile.malloc_calls:,}", f"{profile.calloc_calls:,}",
            f"{profile.realloc_calls:,}",
        ))
    text = format_table(
        "Table IV — heap allocation statistics (measured, scaled 1:10,000"
        " | paper, unscaled)",
        ["benchmark", "malloc", "calloc", "realloc",
         "paper malloc", "paper calloc", "paper realloc"],
        rows,
        note=("Counts below 10,000 replay verbatim (mcf really allocates "
              "8 buffers); larger counts are divided by 10,000."))
    write_result(results_dir, "table4_alloc_stats", text)

    for profile in SPEC_PROFILES:
        s = stats[profile.name]
        declared = {
            "malloc": scaled(profile.malloc_calls),
            "calloc": scaled(profile.calloc_calls),
            "realloc": scaled(profile.realloc_calls),
        }
        # Counts for functions absent from the hub target set reroute to
        # the first declared target; account for that before comparing.
        rerouted = dict.fromkeys(declared, 0)
        for fun, count in declared.items():
            destination = (fun if fun in profile.hub_targets
                           else profile.hub_targets[0])
            rerouted[destination] = rerouted.get(destination, 0) + count
        assert s.malloc_calls == rerouted["malloc"], profile.name
        assert s.calloc_calls == rerouted.get("calloc", 0), profile.name
        assert s.realloc_calls == rerouted.get("realloc", 0), profile.name

    # Relative intensity ordering preserved (Table IV's headline shape).
    totals = {name: s.total_allocations for name, s in stats.items()}
    assert totals["400.perlbench"] == max(totals.values())
    assert totals["400.perlbench"] > totals["471.omnetpp"] > \
        totals["483.xalancbmk"] > totals["403.gcc"]
    assert totals["429.mcf"] < 10
    assert totals["458.sjeng"] < 10
